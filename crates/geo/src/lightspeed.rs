//! Speed-of-light propagation bounds.
//!
//! Fig. 8 annotates the distance/latency scatter with "the generally
//! accepted maximum speed that packets can traverse a given distance in
//! the Internet: ⅔ the speed of light" — the speed of light in optical
//! fiber. Points below that line indicate geolocation errors.

/// Speed of light in vacuum, km/s.
pub const C_KM_PER_S: f64 = 299_792.458;

/// Effective propagation speed in fiber (⅔·c), expressed in km per
/// millisecond: ≈ 199.86 km/ms.
pub const FIBER_KM_PER_MS: f64 = C_KM_PER_S * (2.0 / 3.0) / 1000.0;

/// The minimum physically possible round-trip time, in milliseconds,
/// between two hosts `distance_km` apart, assuming straight-line fiber.
pub fn min_rtt_ms(distance_km: f64) -> f64 {
    assert!(distance_km >= 0.0, "negative distance");
    2.0 * distance_km / FIBER_KM_PER_MS
}

/// The inverse: the farthest two hosts can be (km) given an observed RTT
/// in milliseconds. Used to sanity-check geolocation data.
pub fn max_distance_km(rtt_ms: f64) -> f64 {
    assert!(rtt_ms >= 0.0, "negative RTT");
    rtt_ms * FIBER_KM_PER_MS / 2.0
}

/// Whether an (RTT, distance) observation is physically possible.
pub fn physically_possible(rtt_ms: f64, distance_km: f64) -> bool {
    rtt_ms + 1e-9 >= min_rtt_ms(distance_km)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_speed_is_two_thirds_c() {
        assert!((FIBER_KM_PER_MS - 199.86).abs() < 0.01);
    }

    #[test]
    fn transatlantic_bound() {
        // NYC–London ≈ 5570 km → minimum RTT ≈ 55.7 ms.
        let rtt = min_rtt_ms(5570.0);
        assert!((rtt - 55.7).abs() < 0.5, "got {rtt}");
    }

    #[test]
    fn zero_distance_zero_rtt() {
        assert_eq!(min_rtt_ms(0.0), 0.0);
    }

    #[test]
    fn inverse_functions_roundtrip() {
        let d = 1234.5;
        assert!((max_distance_km(min_rtt_ms(d)) - d).abs() < 1e-9);
    }

    #[test]
    fn possibility_check() {
        assert!(physically_possible(60.0, 5570.0));
        assert!(!physically_possible(40.0, 5570.0));
        assert!(physically_possible(0.0, 0.0));
    }
}
