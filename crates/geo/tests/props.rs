//! Property-based tests for geodesy and classification.

use geo::{classify_hostname, great_circle_km, min_rtt_ms, GeoPoint, HostClass};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = GeoPoint> {
    (-90.0..90.0f64, -180.0..180.0f64).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_symmetric(a in point(), b in point()) {
        let ab = great_circle_km(a, b);
        let ba = great_circle_km(b, a);
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn distance_nonnegative_and_bounded(a in point(), b in point()) {
        let d = great_circle_km(a, b);
        prop_assert!(d >= 0.0);
        // Half the circumference is the maximum separation.
        prop_assert!(d <= std::f64::consts::PI * 6371.01 + 1.0);
    }

    #[test]
    fn triangle_inequality_holds_geometrically(a in point(), b in point(), c in point()) {
        // Physical geometry never violates the triangle inequality; the
        // paper's TIVs come from routing, which netsim models separately.
        let direct = great_circle_km(a, c);
        let detour = great_circle_km(a, b) + great_circle_km(b, c);
        prop_assert!(direct <= detour + 1e-6);
    }

    #[test]
    fn identity_of_indiscernibles(a in point()) {
        prop_assert_eq!(great_circle_km(a, a), 0.0);
    }

    #[test]
    fn light_bound_monotone(d1 in 0.0..20_000.0f64, d2 in 0.0..20_000.0f64) {
        if d1 <= d2 {
            prop_assert!(min_rtt_ms(d1) <= min_rtt_ms(d2));
        } else {
            prop_assert!(min_rtt_ms(d1) >= min_rtt_ms(d2));
        }
    }

    #[test]
    fn classifier_total_on_arbitrary_strings(s in "[a-z0-9.-]{0,64}") {
        // Never panics, always returns one of the three classes.
        let c = classify_hostname(&s);
        prop_assert!(matches!(c, HostClass::Residential | HostClass::Datacenter | HostClass::Unknown));
    }

    #[test]
    fn offset_roundtrip_small(a in point(), n in -50.0..50.0f64, e in -50.0..50.0f64) {
        // Small offsets move the point by at most the Euclidean magnitude
        // (plus slack for spherical distortion at extreme latitudes).
        let b = a.offset_km(n, e);
        let d = great_circle_km(a, b);
        let mag = (n * n + e * e).sqrt();
        prop_assert!(d <= mag * 1.5 + 1.0, "moved {d} for offset {mag}");
    }
}
