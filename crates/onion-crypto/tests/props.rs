//! Property-based tests for the crypto primitives.

use onion_crypto::{
    chacha20::ChaCha20, client_handshake_finish, client_handshake_start, hkdf, hmac_sha256,
    server_handshake, sha256, KeyPair, Sha256,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_distinct_on_bitflip(data in prop::collection::vec(any::<u8>(), 1..128), idx in 0usize..128, bit in 0u8..8) {
        let idx = idx % data.len();
        let mut flipped = data.clone();
        flipped[idx] ^= 1 << bit;
        prop_assert_ne!(sha256(&data), sha256(&flipped));
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in prop::collection::vec(any::<u8>(), 0..100),
        msg in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        let a = hmac_sha256(&key, &msg);
        let b = hmac_sha256(&key, &msg);
        prop_assert_eq!(a, b);
        let mut key2 = key.clone();
        key2.push(0x01);
        prop_assert_ne!(a, hmac_sha256(&key2, &msg));
    }

    #[test]
    fn hkdf_output_lengths(
        salt in prop::collection::vec(any::<u8>(), 0..32),
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        len in 0usize..512,
    ) {
        let okm = hkdf(&salt, &ikm, b"test", len);
        prop_assert_eq!(okm.len(), len);
    }

    #[test]
    fn chacha_roundtrip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        msg in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut buf = msg.clone();
        ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut buf);
        ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut buf);
        prop_assert_eq!(buf, msg);
    }

    #[test]
    fn chacha_chunking_invariance(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        chunks in prop::collection::vec(1usize..64, 1..8),
    ) {
        let total: usize = chunks.iter().sum();
        let mut whole = ChaCha20::new(&key, &nonce, 0);
        let expect = whole.keystream(total);
        let mut split = ChaCha20::new(&key, &nonce, 0);
        let mut got = Vec::new();
        for c in chunks {
            got.extend(split.keystream(c));
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn ntor_handshake_always_agrees(
        id_seed in any::<[u8; 32]>(),
        client_seed in any::<[u8; 32]>(),
        server_seed in any::<[u8; 32]>(),
    ) {
        let identity = KeyPair::from_secret(id_seed);
        let (state, x_pub) = client_handshake_start(KeyPair::from_secret(client_seed), identity.public);
        let (reply, server_keys) = server_handshake(&identity, KeyPair::from_secret(server_seed), &x_pub);
        let client_keys = client_handshake_finish(&state, &reply);
        prop_assert_eq!(client_keys, Some(server_keys));
    }

    #[test]
    fn x25519_dh_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let ka = KeyPair::from_secret(a);
        let kb = KeyPair::from_secret(b);
        prop_assert_eq!(
            onion_crypto::x25519(&ka.secret, &kb.public),
            onion_crypto::x25519(&kb.secret, &ka.public)
        );
    }
}
