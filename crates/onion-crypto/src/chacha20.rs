//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Each circuit hop holds two independent ChaCha20 streams (forward and
//! backward). [`ChaCha20`] keeps a running keystream position so that
//! successive relay cells continue the stream exactly where the previous
//! cell left off — the property that makes onion layers peel correctly
//! only when every cell passes through in order.

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// Incremental ChaCha20 keystream generator / stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    /// Remainder of the current keystream block.
    block: [u8; 64],
    /// Offset into `block` of the next unused keystream byte (64 = empty).
    offset: usize,
}

impl ChaCha20 {
    /// Creates a cipher with the given 256-bit key and 96-bit nonce,
    /// starting at block counter `counter` (RFC 8439 uses 1 for
    /// encryption; 0 is conventional for pure keystream uses).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> ChaCha20 {
        let mut k = [0u32; 8];
        for i in 0..8 {
            k[i] = u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        let mut n = [0u32; 3];
        for i in 0..3 {
            n[i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
            block: [0u8; 64],
            offset: 64,
        }
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.offset == 64 {
                self.refill();
            }
            *byte ^= self.block[self.offset];
            self.offset += 1;
        }
    }

    /// Produces `len` raw keystream bytes (used for key derivation in
    /// tests and for padding generation).
    pub fn keystream(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.apply_keystream(&mut out);
        out
    }

    fn refill(&mut self) {
        let block = chacha20_block(&self.key, self.counter, &self.nonce);
        self.block = block;
        self.counter = self.counter.wrapping_add(1);
        self.offset = 0;
    }
}

/// The ChaCha quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(7);
}

/// The ChaCha20 block function: 20 rounds over the 16-word state, plus
/// the feed-forward addition, serialized little-endian.
pub fn chacha20_block(key: &[u32; 8], counter: u32, nonce: &[u32; 3]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter;
    state[13..16].copy_from_slice(nonce);
    let initial = state;

    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 §2.1.1.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000,
        // counter 1.
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut c = ChaCha20::new(&rfc_key(), &nonce, 1);
        let ks = c.keystream(64);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2: the "sunscreen" plaintext, counter starts at 1.
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut buf = plaintext.to_vec();
        let mut c = ChaCha20::new(&rfc_key(), &nonce, 1);
        c.apply_keystream(&mut buf);
        assert_eq!(
            hex(&buf[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Decrypting restores the plaintext.
        let mut d = ChaCha20::new(&rfc_key(), &nonce, 1);
        d.apply_keystream(&mut buf);
        assert_eq!(&buf[..], &plaintext[..]);
    }

    #[test]
    fn keystream_continues_across_calls() {
        let key = rfc_key();
        let nonce = [7u8; 12];
        let mut whole = ChaCha20::new(&key, &nonce, 0);
        let expect = whole.keystream(200);

        let mut split = ChaCha20::new(&key, &nonce, 0);
        let mut got = split.keystream(13);
        got.extend(split.keystream(51));
        got.extend(split.keystream(136));
        assert_eq!(got, expect);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        let msg = b"attack at dawn over the tor circuit".to_vec();
        let mut buf = msg.clone();
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
        assert_ne!(buf, msg);
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
        assert_eq!(buf, msg);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [1u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12], 0).keystream(32);
        let b = ChaCha20::new(&key, &[1u8; 12], 0).keystream(32);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_wraps_without_panic() {
        let mut c = ChaCha20::new(&[0u8; 32], &[0u8; 12], u32::MAX);
        let _ = c.keystream(130); // crosses the wrap point
    }
}
