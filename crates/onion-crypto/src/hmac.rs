//! HMAC-SHA256 (RFC 2104), validated against RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    // Keys longer than one block are hashed down first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let out = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&out),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed_down() {
        // RFC 4231 case 6: 131-byte key of 0xaa.
        let key = [0xaau8; 131];
        let out = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_give_different_macs() {
        let m = b"same message";
        assert_ne!(hmac_sha256(b"k1", m), hmac_sha256(b"k2", m));
    }

    #[test]
    fn empty_key_and_message_work() {
        let a = hmac_sha256(b"", b"");
        let b = hmac_sha256(b"", b"x");
        assert_ne!(a, b);
    }
}
