//! An ntor-style circuit-extension handshake (after tor-spec §5.1.4).
//!
//! Every hop of a simulated Tor circuit is established with a real DH
//! exchange: the client sends an ephemeral X25519 public key in its
//! CREATE2/EXTEND2 cell; the relay replies with its own ephemeral key and
//! an authentication tag. Both sides then derive identical [`HopKeys`] —
//! forward/backward ChaCha20 keys + nonces and digest seeds — via HKDF.
//!
//! Differences from production ntor are deliberate simplifications that
//! do not affect the measurement semantics: we use HKDF-SHA256 throughout
//! (Tor does too, post-ntor), a single protocol label, and ChaCha20 keys
//! instead of AES-CTR.

use crate::hkdf::hkdf;
use crate::hmac::hmac_sha256;
use crate::x25519::{x25519, KeyPair, PublicKey};

/// Domain-separation label for all handshake derivations.
const PROTOID: &[u8] = b"ting-repro-ntor-chacha20-sha256-1";

/// Per-hop symmetric key material shared by client and relay.
///
/// Forward = client→exit direction, backward = exit→client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopKeys {
    pub forward_key: [u8; 32],
    pub forward_nonce: [u8; 12],
    pub backward_key: [u8; 32],
    pub backward_nonce: [u8; 12],
    pub forward_digest_seed: [u8; 32],
    pub backward_digest_seed: [u8; 32],
}

impl HopKeys {
    /// Total bytes of key material needed from the KDF.
    const KDF_LEN: usize = 32 + 12 + 32 + 12 + 32 + 32;

    fn from_kdf(okm: &[u8]) -> HopKeys {
        assert_eq!(okm.len(), Self::KDF_LEN);
        let mut keys = HopKeys {
            forward_key: [0; 32],
            forward_nonce: [0; 12],
            backward_key: [0; 32],
            backward_nonce: [0; 12],
            forward_digest_seed: [0; 32],
            backward_digest_seed: [0; 32],
        };
        let mut off = 0;
        keys.forward_key.copy_from_slice(&okm[off..off + 32]);
        off += 32;
        keys.forward_nonce.copy_from_slice(&okm[off..off + 12]);
        off += 12;
        keys.backward_key.copy_from_slice(&okm[off..off + 32]);
        off += 32;
        keys.backward_nonce.copy_from_slice(&okm[off..off + 12]);
        off += 12;
        keys.forward_digest_seed
            .copy_from_slice(&okm[off..off + 32]);
        off += 32;
        keys.backward_digest_seed
            .copy_from_slice(&okm[off..off + 32]);
        keys
    }
}

/// The client's ephemeral state between sending the onion skin and
/// receiving the relay's reply.
#[derive(Debug, Clone)]
pub struct ClientHandshakeState {
    /// Client ephemeral keypair (x, X).
    pub ephemeral: KeyPair,
    /// Relay identity public key B the onion skin targets.
    pub relay_identity: PublicKey,
}

/// The onion-skin payload the client puts in CREATE2/EXTEND2: its
/// ephemeral public key X.
pub fn client_handshake_start(
    ephemeral: KeyPair,
    relay_identity: PublicKey,
) -> (ClientHandshakeState, PublicKey) {
    let x_pub = ephemeral.public;
    (
        ClientHandshakeState {
            ephemeral,
            relay_identity,
        },
        x_pub,
    )
}

/// The relay's reply: its ephemeral public key Y plus an auth tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerReply {
    pub ephemeral_public: PublicKey,
    pub auth: [u8; 32],
}

/// Relay side: processes the client's X using the relay's identity
/// keypair `(b, B)` and a fresh ephemeral `(y, Y)`; returns the reply to
/// send and the derived hop keys.
pub fn server_handshake(
    identity: &KeyPair,
    ephemeral: KeyPair,
    client_public: &PublicKey,
) -> (ServerReply, HopKeys) {
    // secret_input = EXP(X, y) | EXP(X, b) | B | X | Y | PROTOID
    let xy = x25519(&ephemeral.secret, client_public);
    let xb = x25519(&identity.secret, client_public);
    let (keys, auth) = derive(&xy, &xb, &identity.public, client_public, &ephemeral.public);
    (
        ServerReply {
            ephemeral_public: ephemeral.public,
            auth,
        },
        keys,
    )
}

/// Client side: processes the relay's reply; returns the hop keys, or
/// `None` if the auth tag does not verify (wrong relay identity or a
/// corrupted reply).
pub fn client_handshake_finish(
    state: &ClientHandshakeState,
    reply: &ServerReply,
) -> Option<HopKeys> {
    // secret_input = EXP(Y, x) | EXP(B, x) | B | X | Y | PROTOID
    let xy = x25519(&state.ephemeral.secret, &reply.ephemeral_public);
    let xb = x25519(&state.ephemeral.secret, &state.relay_identity);
    let (keys, auth) = derive(
        &xy,
        &xb,
        &state.relay_identity,
        &state.ephemeral.public,
        &reply.ephemeral_public,
    );
    if auth == reply.auth {
        Some(keys)
    } else {
        None
    }
}

/// Shared derivation: both sides feed the same transcript into HKDF.
fn derive(
    xy: &[u8; 32],
    xb: &[u8; 32],
    relay_identity: &PublicKey,
    client_public: &PublicKey,
    server_public: &PublicKey,
) -> (HopKeys, [u8; 32]) {
    let mut secret_input = Vec::with_capacity(32 * 5 + PROTOID.len());
    secret_input.extend_from_slice(xy);
    secret_input.extend_from_slice(xb);
    secret_input.extend_from_slice(relay_identity);
    secret_input.extend_from_slice(client_public);
    secret_input.extend_from_slice(server_public);
    secret_input.extend_from_slice(PROTOID);

    let okm = hkdf(PROTOID, &secret_input, b"key-expansion", HopKeys::KDF_LEN);
    let keys = HopKeys::from_kdf(&okm);
    let auth = hmac_sha256(&okm[..32], b"server-auth");
    (keys, auth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u8) -> KeyPair {
        KeyPair::from_secret([seed; 32])
    }

    #[test]
    fn both_sides_derive_identical_keys() {
        let identity = kp(1);
        let client_eph = kp(2);
        let server_eph = kp(3);

        let (state, x_pub) = client_handshake_start(client_eph, identity.public);
        let (reply, server_keys) = server_handshake(&identity, server_eph, &x_pub);
        let client_keys = client_handshake_finish(&state, &reply).expect("auth must verify");
        assert_eq!(client_keys, server_keys);
    }

    #[test]
    fn forward_and_backward_keys_differ() {
        let identity = kp(1);
        let (state, x_pub) = client_handshake_start(kp(2), identity.public);
        let (reply, _) = server_handshake(&identity, kp(3), &x_pub);
        let keys = client_handshake_finish(&state, &reply).unwrap();
        assert_ne!(keys.forward_key, keys.backward_key);
        assert_ne!(keys.forward_digest_seed, keys.backward_digest_seed);
    }

    #[test]
    fn wrong_identity_fails_auth() {
        let identity = kp(1);
        let wrong_identity = kp(9);
        // Client thinks it's talking to `wrong_identity`.
        let (state, x_pub) = client_handshake_start(kp(2), wrong_identity.public);
        let (reply, _) = server_handshake(&identity, kp(3), &x_pub);
        assert!(client_handshake_finish(&state, &reply).is_none());
    }

    #[test]
    fn tampered_reply_fails_auth() {
        let identity = kp(1);
        let (state, x_pub) = client_handshake_start(kp(2), identity.public);
        let (mut reply, _) = server_handshake(&identity, kp(3), &x_pub);
        reply.auth[0] ^= 0xff;
        assert!(client_handshake_finish(&state, &reply).is_none());
    }

    #[test]
    fn distinct_ephemerals_give_distinct_sessions() {
        let identity = kp(1);
        let (state_a, x_a) = client_handshake_start(kp(2), identity.public);
        let (state_b, x_b) = client_handshake_start(kp(4), identity.public);
        let (reply_a, _) = server_handshake(&identity, kp(3), &x_a);
        let (reply_b, _) = server_handshake(&identity, kp(5), &x_b);
        let ka = client_handshake_finish(&state_a, &reply_a).unwrap();
        let kb = client_handshake_finish(&state_b, &reply_b).unwrap();
        assert_ne!(ka, kb);
    }
}
