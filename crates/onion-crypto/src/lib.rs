//! From-scratch cryptographic primitives for the simulated Tor overlay.
//!
//! The offline crate set contains no cryptography, so this crate
//! implements everything the Tor substrate needs:
//!
//! * [`mod@sha256`] — streaming SHA-256 (FIPS 180-4),
//! * [`mod@hmac`] — HMAC-SHA256 (RFC 2104 / 4231),
//! * [`mod@hkdf`] — HKDF extract-and-expand (RFC 5869),
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439),
//! * [`mod@x25519`] — X25519 Diffie–Hellman over Curve25519 (RFC 7748),
//! * [`ntor`] — an ntor-style circuit-extension handshake combining the
//!   above, producing the per-hop key material used by `tor-protocol`'s
//!   layered relay crypto.
//!
//! Why real crypto in a simulator? Two reasons. First, Ting's forwarding-
//! delay story (§3.2, §4.3 of the paper) hinges on the fact that a relay's
//! per-cell work is dominated by symmetric cryptography — cells here are
//! genuinely onion-encrypted and decrypted so that cost and correctness
//! are real, and the Criterion benches measure the real thing. Second,
//! circuit construction (CREATE2/EXTEND2) only behaves like Tor if key
//! derivation actually happens per hop.
//!
//! These implementations favour clarity over speed and are **not**
//! hardened against side channels; they exist to support a measurement
//! reproduction, not production key handling.

pub mod chacha20;
pub mod hkdf;
pub mod hmac;
pub mod ntor;
pub mod sha256;
pub mod x25519;

pub use chacha20::ChaCha20;
pub use hkdf::{hkdf, hkdf_expand, hkdf_extract};
pub use hmac::hmac_sha256;
pub use ntor::{
    client_handshake_finish, client_handshake_start, server_handshake, ClientHandshakeState,
    HopKeys, ServerReply,
};
pub use sha256::{sha256, Sha256};
pub use x25519::{x25519, x25519_base, KeyPair, PublicKey, SecretKey};
