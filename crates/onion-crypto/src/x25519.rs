//! X25519 Diffie–Hellman over Curve25519 (RFC 7748).
//!
//! The ntor-style circuit handshake needs an actual DH exchange so that
//! every CREATE2/EXTEND2 derives fresh per-hop keys. This is a compact,
//! constant-structure (swap-based ladder) implementation using radix-2⁵¹
//! field arithmetic; it is validated against the RFC 7748 test vectors
//! and the Alice/Bob DH example from §6.1.

/// A field element in GF(2²⁵⁵ − 19), five 51-bit limbs, little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fe([u64; 5]);

const MASK51: u64 = (1 << 51) - 1;

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Decodes 32 little-endian bytes, ignoring the top bit per RFC 7748.
    fn from_bytes(b: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut v = [0u8; 8];
            v.copy_from_slice(&b[i..i + 8]);
            u64::from_le_bytes(v)
        };
        Fe([
            load(0) & MASK51,
            (load(6) >> 3) & MASK51,
            (load(12) >> 6) & MASK51,
            (load(19) >> 1) & MASK51,
            (load(24) >> 12) & MASK51,
        ])
    }

    /// Encodes to 32 bytes with full reduction mod p.
    fn to_bytes(self) -> [u8; 32] {
        let mut t = self.reduce_weak();
        // Final conditional subtraction of p = 2^255 - 19: compute
        // t + 19, and if that carries past 2^255 then t >= p.
        let mut carry = (t.0[0] + 19) >> 51;
        for i in 1..5 {
            carry = (t.0[i] + carry) >> 51;
        }
        // carry is 1 iff t >= p; subtract p by adding 19 and masking.
        let c19 = 19 * carry;
        t.0[0] += c19;
        for i in 0..4 {
            let c = t.0[i] >> 51;
            t.0[i] &= MASK51;
            t.0[i + 1] += c;
        }
        t.0[4] &= MASK51;

        let mut out = [0u8; 32];
        let limbs = t.0;
        // Pack 5 × 51 bits into 255 bits.
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in limbs {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        if idx < 32 {
            out[idx] = acc as u8;
        }
        out
    }

    /// Carries limbs down to ≤ 51 bits each (value may still be ≥ p).
    fn reduce_weak(self) -> Fe {
        let mut l = self.0;
        let mut c;
        for _ in 0..2 {
            c = l[0] >> 51;
            l[0] &= MASK51;
            l[1] += c;
            c = l[1] >> 51;
            l[1] &= MASK51;
            l[2] += c;
            c = l[2] >> 51;
            l[2] &= MASK51;
            l[3] += c;
            c = l[3] >> 51;
            l[3] &= MASK51;
            l[4] += c;
            c = l[4] >> 51;
            l[4] &= MASK51;
            l[0] += 19 * c;
        }
        Fe(l)
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut l = [0u64; 5];
        for (i, limb) in l.iter_mut().enumerate() {
            *limb = self.0[i] + rhs.0[i];
        }
        Fe(l).reduce_weak()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2p (in limb form) before subtracting to keep limbs positive.
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + TWO_P[i] - rhs.0[i];
        }
        Fe(l).reduce_weak()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let m = |x: u64, y: u64| x as u128 * y as u128;
        // Schoolbook with the 2^255 ≡ 19 folding.
        let mut t0 =
            m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        let mut t1 =
            m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        let mut t2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        let mut t3 =
            m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        let mut t4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        // Carry chain.
        let mut c = t0 >> 51;
        t1 += c;
        let r0 = (t0 as u64) & MASK51;
        c = t1 >> 51;
        t2 += c;
        let r1 = (t1 as u64) & MASK51;
        c = t2 >> 51;
        t3 += c;
        let r2 = (t2 as u64) & MASK51;
        c = t3 >> 51;
        t4 += c;
        let r3 = (t3 as u64) & MASK51;
        c = t4 >> 51;
        let r4 = (t4 as u64) & MASK51;
        t0 = r0 as u128 + 19 * c;
        let c2 = (t0 >> 51) as u64;
        let r0 = (t0 as u64) & MASK51;
        let r1 = r1 + c2;

        Fe([r0, r1, r2, r3, r4]).reduce_weak()
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    /// Multiplies by the small constant 121665 (the curve's (A−2)/4).
    fn mul_small(self, k: u64) -> Fe {
        let mut t = [0u128; 5];
        for (i, word) in t.iter_mut().enumerate() {
            *word = self.0[i] as u128 * k as u128;
        }
        let mut l = [0u64; 5];
        let mut c: u128 = 0;
        for i in 0..5 {
            let v = t[i] + c;
            l[i] = (v as u64) & MASK51;
            c = v >> 51;
        }
        l[0] += 19 * c as u64;
        Fe(l).reduce_weak()
    }

    /// Inversion via Fermat: x^(p−2).
    fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21; exponent bits: all ones except bits 1,2
        // (binary ...11101011). Simple square-and-multiply MSB-first over
        // the 255-bit exponent is clear and fast enough here.
        let mut result = Fe::ONE;
        let base = self;
        // Bits of p-2 from most significant (bit 254) down to 0.
        for i in (0..255).rev() {
            result = result.square();
            let bit = if i >= 5 {
                1 // bits 5..=254 of 2^255 - 21 are all 1
            } else {
                // low five bits: 2^5 - 21 = 11 = 0b01011
                (0b01011u64 >> i) & 1
            };
            if bit == 1 {
                result = result.mul(base);
            }
        }
        result
    }

    /// Constant-structure conditional swap.
    fn cswap(a: &mut Fe, b: &mut Fe, swap: u64) {
        let mask = 0u64.wrapping_sub(swap); // 0 or all-ones
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }
}

/// A clamped X25519 secret key (32 bytes).
pub type SecretKey = [u8; 32];
/// An X25519 public key / curve point u-coordinate (32 bytes).
pub type PublicKey = [u8; 32];

/// An X25519 keypair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    pub secret: SecretKey,
    pub public: PublicKey,
}

impl KeyPair {
    /// Derives the keypair for `secret` (clamping is applied during
    /// scalar multiplication, so any 32 bytes are a valid secret).
    pub fn from_secret(secret: SecretKey) -> KeyPair {
        KeyPair {
            secret,
            public: x25519_base(&secret),
        }
    }

    /// Generates a keypair from any RNG-ish source of 32 bytes.
    pub fn from_entropy(bytes: [u8; 32]) -> KeyPair {
        KeyPair::from_secret(bytes)
    }
}

/// RFC 7748 scalar clamping.
fn clamp(scalar: &[u8; 32]) -> [u8; 32] {
    let mut s = *scalar;
    s[0] &= 248;
    s[31] &= 127;
    s[31] |= 64;
    s
}

/// Scalar multiplication: `scalar · point` on Curve25519 (the X25519
/// function of RFC 7748).
pub fn x25519(scalar: &SecretKey, point: &PublicKey) -> [u8; 32] {
    let k = clamp(scalar);
    let x1 = Fe::from_bytes(point);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = ((k[t >> 3] >> (t & 7)) & 1) as u64;
        swap ^= k_t;
        Fe::cswap(&mut x2, &mut x3, swap);
        Fe::cswap(&mut z2, &mut z3, swap);
        swap = k_t;

        // RFC 7748 ladder step.
        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121665)));
    }
    Fe::cswap(&mut x2, &mut x3, swap);
    Fe::cswap(&mut z2, &mut z3, swap);

    x2.mul(z2.invert()).to_bytes()
}

/// Scalar multiplication by the standard base point (u = 9).
pub fn x25519_base(scalar: &SecretKey) -> PublicKey {
    let mut base = [0u8; 32];
    base[0] = 9;
    x25519(scalar, &base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    fn unhex(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&x25519(&scalar, &point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_dh_alice_bob() {
        let alice_sk = unhex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_sk = unhex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pk = x25519_base(&alice_sk);
        let bob_pk = x25519_base(&bob_sk);
        assert_eq!(
            hex(&alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = x25519(&alice_sk, &bob_pk);
        let s2 = x25519(&bob_sk, &alice_pk);
        assert_eq!(s1, s2);
        assert_eq!(
            hex(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn dh_commutes_for_arbitrary_secrets() {
        for seed in 0u8..8 {
            let a = [seed.wrapping_mul(37).wrapping_add(1); 32];
            let b = [seed.wrapping_mul(91).wrapping_add(5); 32];
            let pa = x25519_base(&a);
            let pb = x25519_base(&b);
            assert_eq!(x25519(&a, &pb), x25519(&b, &pa), "seed {seed}");
        }
    }

    #[test]
    fn clamping_fixes_bits() {
        let c = clamp(&[0xffu8; 32]);
        assert_eq!(c[0] & 7, 0);
        assert_eq!(c[31] & 0x80, 0);
        assert_eq!(c[31] & 0x40, 0x40);
    }

    #[test]
    fn field_roundtrip_encode_decode() {
        // Values below p roundtrip through byte encoding.
        for fill in [0u8, 1, 0x7f, 0x55] {
            let mut bytes = [fill; 32];
            bytes[31] &= 0x7f; // keep below 2^255
            let fe = Fe::from_bytes(&bytes);
            // Canonical values < p re-encode to themselves; 0x7f-fill is
            // below p (p ends in 0xed at byte 0... actually p is
            // 2^255-19 so only values >= p change). All fills here < p.
            assert_eq!(fe.to_bytes(), bytes, "fill {fill:#x}");
        }
    }

    #[test]
    fn non_canonical_encoding_reduces() {
        // p itself must encode to zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let fe = Fe::from_bytes(&p_bytes);
        assert_eq!(fe.to_bytes(), [0u8; 32]);
    }

    #[test]
    fn invert_is_inverse() {
        let mut bytes = [3u8; 32];
        bytes[31] = 0x12;
        let x = Fe::from_bytes(&bytes);
        let one = x.mul(x.invert());
        assert_eq!(one.to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn keypair_is_deterministic() {
        let kp1 = KeyPair::from_secret([7u8; 32]);
        let kp2 = KeyPair::from_secret([7u8; 32]);
        assert_eq!(kp1, kp2);
        assert_ne!(kp1.public, KeyPair::from_secret([8u8; 32]).public);
    }
}
