//! HKDF extract-and-expand (RFC 5869) over HMAC-SHA256.
//!
//! The ntor-style handshake derives all per-hop circuit key material —
//! forward/backward cipher keys, nonces, and digest seeds — from the
//! Diffie–Hellman shared secret through HKDF, mirroring Tor's use of
//! HKDF-SHA256 in its ntor handshake (tor-spec §5.2.2).

use crate::hmac::hmac_sha256;

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: stretches `prk` to `len` bytes of output keyed by `info`.
///
/// # Panics
/// Panics if `len > 255 * 32` (RFC limit).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF output too long");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (len - okm.len()).min(32);
        okm.extend_from_slice(&block[..take]);
        t = block.to_vec();
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    okm
}

/// Full extract-then-expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::hex;

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_and_info() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_lengths_are_prefixes() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let long = hkdf_expand(&prk, b"info", 100);
        for len in [1usize, 31, 32, 33, 64, 99] {
            assert_eq!(hkdf_expand(&prk, b"info", len), long[..len].to_vec());
        }
    }

    #[test]
    fn different_info_different_output() {
        let prk = hkdf_extract(b"s", b"k");
        assert_ne!(hkdf_expand(&prk, b"a", 32), hkdf_expand(&prk, b"b", 32));
    }

    #[test]
    fn zero_length_output() {
        let prk = hkdf_extract(b"s", b"k");
        assert!(hkdf_expand(&prk, b"i", 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn over_limit_rejected() {
        let prk = [0u8; 32];
        let _ = hkdf_expand(&prk, b"", 255 * 32 + 1);
    }
}
