//! The Tor wire format, after tor-spec: fixed-size cells, relay-cell
//! sub-headers, circuit-extension handshake payloads, and the layered
//! ("onion") relay cryptography.
//!
//! Ting's whole premise is that it works at Tor's *data plane* with no
//! protocol modifications, so this crate reproduces the protocol surface
//! Ting touches faithfully:
//!
//! * 514-byte cells with a circuit id, command, and fixed payload
//!   ([`cell`]);
//! * relay cells carried inside encrypted payloads, with the
//!   `recognized` / running-digest mechanism that lets a hop detect
//!   cells addressed to it ([`relay`]);
//! * CREATE2/CREATED2/EXTEND2/EXTENDED2 handshake payloads carrying
//!   ntor-style key exchanges ([`extend`]);
//! * per-hop cipher/digest state and the layered encryption that makes
//!   each relay strip or add exactly one layer ([`onion`]).
//!
//! What is intentionally simplified relative to production Tor (and
//! documented here so nobody mistakes it for an oversight): link-level
//! TLS is represented by `netsim`'s connection handshake; cell commands
//! not exercised by Ting (VERSIONS, NETINFO, PADDING negotiation…) are
//! omitted; and the relay crypto uses ChaCha20 + SHA-256 rather than
//! AES-CTR + SHA-1 (same structure, current primitives).

pub mod cell;
pub mod extend;
pub mod onion;
pub mod relay;

pub use cell::{Cell, CellCommand, CircuitId, CELL_LEN, PAYLOAD_LEN};
pub use extend::{Extend2, Extended2};
pub use onion::{ClientCrypto, RelayCrypto, RelayCryptoOutcome};
pub use relay::{RelayCell, RelayCmd, RELAY_DATA_LEN};
