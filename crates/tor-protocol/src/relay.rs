//! Relay cells: the end-to-end records carried inside encrypted cell
//! payloads.
//!
//! Wire layout inside the 509-byte payload (after all onion layers are
//! removed), following tor-spec §6.1:
//!
//! ```text
//! relay command   1 byte
//! 'recognized'    2 bytes   (zero when fully decrypted at the right hop)
//! stream id       2 bytes
//! digest          4 bytes   (running digest, computed with this field 0)
//! length          2 bytes
//! data            498 bytes (zero-padded)
//! ```

use crate::cell::PAYLOAD_LEN;
use bytes::{Buf, BufMut};

/// Header bytes before the data section.
pub const RELAY_HEADER_LEN: usize = 1 + 2 + 2 + 4 + 2;
/// Maximum data bytes per relay cell.
pub const RELAY_DATA_LEN: usize = PAYLOAD_LEN - RELAY_HEADER_LEN; // 498

/// Relay-cell commands (the subset Ting's circuits exercise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RelayCmd {
    /// Open a stream through the exit to a target.
    Begin = 1,
    /// Application payload on a stream.
    Data = 2,
    /// Close a stream.
    End = 3,
    /// Stream successfully opened.
    Connected = 4,
    /// Flow-control credit (modelled but not enforced; echo probes are
    /// one cell in flight at a time).
    SendMe = 5,
    /// Extend the circuit by one hop.
    Extend2 = 14,
    /// Extension succeeded.
    Extended2 = 15,
}

impl RelayCmd {
    pub fn from_u8(v: u8) -> Option<RelayCmd> {
        match v {
            1 => Some(RelayCmd::Begin),
            2 => Some(RelayCmd::Data),
            3 => Some(RelayCmd::End),
            4 => Some(RelayCmd::Connected),
            5 => Some(RelayCmd::SendMe),
            14 => Some(RelayCmd::Extend2),
            15 => Some(RelayCmd::Extended2),
            _ => None,
        }
    }
}

/// A parsed relay cell (header + data, before encryption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayCell {
    pub cmd: RelayCmd,
    pub stream_id: u16,
    pub data: Vec<u8>,
}

impl RelayCell {
    /// Builds a relay cell.
    ///
    /// # Panics
    /// Panics if `data` exceeds [`RELAY_DATA_LEN`].
    pub fn new(cmd: RelayCmd, stream_id: u16, data: Vec<u8>) -> RelayCell {
        assert!(
            data.len() <= RELAY_DATA_LEN,
            "relay data too long: {}",
            data.len()
        );
        RelayCell {
            cmd,
            stream_id,
            data,
        }
    }

    /// Serializes into a full 509-byte payload with the digest field set
    /// to `digest` (the caller computes it over the zero-digest bytes).
    pub fn encode_with_digest(&self, digest: [u8; 4]) -> Vec<u8> {
        let mut buf = self.encode_zero_digest();
        buf[5..9].copy_from_slice(&digest);
        buf
    }

    /// Serializes with a zeroed digest field — the form the running
    /// digest is computed over.
    pub fn encode_zero_digest(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PAYLOAD_LEN);
        buf.put_u8(self.cmd as u8);
        buf.put_u16(0); // recognized
        buf.put_u16(self.stream_id);
        buf.put_u32(0); // digest (filled in later)
        buf.put_u16(self.data.len() as u16);
        buf.extend_from_slice(&self.data);
        buf.resize(PAYLOAD_LEN, 0);
        buf
    }

    /// Parses a fully decrypted payload. Returns `None` if the payload
    /// is malformed (bad command, bad length field).
    pub fn decode(payload: &[u8]) -> Option<(RelayCell, [u8; 4])> {
        if payload.len() != PAYLOAD_LEN {
            return None;
        }
        let mut b = payload;
        let cmd = RelayCmd::from_u8(b.get_u8())?;
        let recognized = b.get_u16();
        if recognized != 0 {
            return None;
        }
        let stream_id = b.get_u16();
        let mut digest = [0u8; 4];
        b.copy_to_slice(&mut digest);
        let len = b.get_u16() as usize;
        if len > RELAY_DATA_LEN {
            return None;
        }
        let data = b[..len].to_vec();
        Some((
            RelayCell {
                cmd,
                stream_id,
                data,
            },
            digest,
        ))
    }

    /// Fast pre-check a relay uses before running the digest
    /// comparison: a cell can only be "for this hop" if the recognized
    /// field decrypted to zero.
    pub fn looks_recognized(payload: &[u8]) -> bool {
        payload.len() == PAYLOAD_LEN && payload[1] == 0 && payload[2] == 0
    }

    /// Extracts the digest field bytes.
    pub fn digest_field(payload: &[u8]) -> [u8; 4] {
        let mut d = [0u8; 4];
        d.copy_from_slice(&payload[5..9]);
        d
    }

    /// Returns a copy of `payload` with the digest field zeroed (the
    /// form digests are computed over).
    pub fn with_zero_digest(payload: &[u8]) -> Vec<u8> {
        let mut p = payload.to_vec();
        p[5..9].fill(0);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rc = RelayCell::new(RelayCmd::Data, 42, b"ping payload".to_vec());
        let payload = rc.encode_with_digest([9, 8, 7, 6]);
        assert_eq!(payload.len(), PAYLOAD_LEN);
        let (decoded, digest) = RelayCell::decode(&payload).unwrap();
        assert_eq!(decoded, rc);
        assert_eq!(digest, [9, 8, 7, 6]);
    }

    #[test]
    fn all_commands_roundtrip() {
        for cmd in [
            RelayCmd::Begin,
            RelayCmd::Data,
            RelayCmd::End,
            RelayCmd::Connected,
            RelayCmd::SendMe,
            RelayCmd::Extend2,
            RelayCmd::Extended2,
        ] {
            let rc = RelayCell::new(cmd, 1, vec![]);
            let (d, _) = RelayCell::decode(&rc.encode_zero_digest()).unwrap();
            assert_eq!(d.cmd, cmd);
        }
    }

    #[test]
    fn nonzero_recognized_rejected() {
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![1]);
        let mut payload = rc.encode_zero_digest();
        payload[1] = 0xff;
        assert!(RelayCell::decode(&payload).is_none());
        assert!(!RelayCell::looks_recognized(&payload));
    }

    #[test]
    fn bad_length_field_rejected() {
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![1]);
        let mut payload = rc.encode_zero_digest();
        payload[9] = 0xff; // length = 0xff01 > RELAY_DATA_LEN
        assert!(RelayCell::decode(&payload).is_none());
    }

    #[test]
    fn zero_digest_form_zeroes_only_digest() {
        let rc = RelayCell::new(RelayCmd::Data, 7, vec![5; 10]);
        let payload = rc.encode_with_digest([1, 2, 3, 4]);
        let zeroed = RelayCell::with_zero_digest(&payload);
        assert_eq!(&zeroed[5..9], &[0, 0, 0, 0]);
        assert_eq!(RelayCell::digest_field(&payload), [1, 2, 3, 4]);
        // Everything else untouched.
        assert_eq!(&zeroed[..5], &payload[..5]);
        assert_eq!(&zeroed[9..], &payload[9..]);
    }

    #[test]
    fn max_data_fits() {
        let rc = RelayCell::new(RelayCmd::Data, 1, vec![0xaa; RELAY_DATA_LEN]);
        let (d, _) = RelayCell::decode(&rc.encode_zero_digest()).unwrap();
        assert_eq!(d.data.len(), RELAY_DATA_LEN);
    }

    #[test]
    #[should_panic]
    fn oversize_data_rejected() {
        let _ = RelayCell::new(RelayCmd::Data, 1, vec![0; RELAY_DATA_LEN + 1]);
    }
}
