//! Layered relay cryptography.
//!
//! Forward direction (client → exit): the client encrypts a relay cell
//! with the keys of every hop up to and including the addressee,
//! outermost layer last, so each relay strips exactly one layer with its
//! forward keystream. A relay knows a cell is addressed to it when the
//! `recognized` field decrypts to zero **and** the 4-byte digest matches
//! its running forward digest — the tor-spec §6.1 mechanism, reproduced
//! here with ChaCha20 streams and SHA-256 running digests.
//!
//! Backward direction (exit → client): each relay *adds* one layer with
//! its backward keystream; the client peels layers hop by hop until a
//! recognized, digest-valid cell appears, which also tells it which hop
//! originated the cell.
//!
//! Stream-cipher state discipline: a hop's forward cipher advances only
//! for cells that physically pass through that hop, and running digests
//! advance only for cells addressed to (or originated by) that hop.
//! Both sides enforce this identically or the keystreams desynchronize —
//! the property the `multi_hop_interleaving` test locks down.

use crate::relay::RelayCell;
use onion_crypto::{ChaCha20, HopKeys, Sha256};

/// One hop's cipher + digest state (used on both ends).
#[derive(Debug, Clone)]
struct HopState {
    fwd_cipher: ChaCha20,
    bwd_cipher: ChaCha20,
    fwd_digest: Sha256,
    bwd_digest: Sha256,
}

impl HopState {
    fn new(keys: &HopKeys) -> HopState {
        let mut fwd_digest = Sha256::new();
        fwd_digest.update(&keys.forward_digest_seed);
        let mut bwd_digest = Sha256::new();
        bwd_digest.update(&keys.backward_digest_seed);
        HopState {
            fwd_cipher: ChaCha20::new(&keys.forward_key, &keys.forward_nonce, 0),
            bwd_cipher: ChaCha20::new(&keys.backward_key, &keys.backward_nonce, 0),
            fwd_digest,
            bwd_digest,
        }
    }
}

/// Computes the 4-byte digest of `zero_digest_payload` against `state`,
/// returning the would-be new state alongside (commit on match).
fn digest4(state: &Sha256, zero_digest_payload: &[u8]) -> (Sha256, [u8; 4]) {
    let mut next = state.clone();
    next.update(zero_digest_payload);
    let full = next.clone().finalize();
    let mut d = [0u8; 4];
    d.copy_from_slice(&full[..4]);
    (next, d)
}

/// The client's end of a circuit: one per-hop cipher/digest state for
/// each established hop.
#[derive(Debug, Clone, Default)]
pub struct ClientCrypto {
    hops: Vec<HopState>,
}

impl ClientCrypto {
    pub fn new() -> ClientCrypto {
        ClientCrypto { hops: Vec::new() }
    }

    /// Adds the next hop's keys (called after each CREATED2/EXTENDED2).
    pub fn add_hop(&mut self, keys: &HopKeys) {
        self.hops.push(HopState::new(keys));
    }

    /// Number of established hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Onion-encrypts `rc` addressed to hop `hop` (0-based). Returns the
    /// 509-byte ciphertext payload for the first link.
    ///
    /// # Panics
    /// Panics if `hop` is out of range.
    pub fn encrypt_forward(&mut self, hop: usize, rc: &RelayCell) -> Vec<u8> {
        assert!(hop < self.hops.len(), "hop {hop} not established");
        let zero = rc.encode_zero_digest();
        let (next_digest, d4) = digest4(&self.hops[hop].fwd_digest, &zero);
        self.hops[hop].fwd_digest = next_digest;
        let mut payload = rc.encode_with_digest(d4);
        // Innermost layer first (the addressee's), outermost (hop 0) last.
        for i in (0..=hop).rev() {
            self.hops[i].fwd_cipher.apply_keystream(&mut payload);
        }
        payload
    }

    /// Peels backward layers until some hop's cell is recognized.
    /// Returns `(hop_index, cell)`, or `None` if no established hop
    /// recognizes the cell (corruption / desync — callers destroy the
    /// circuit, as Tor does).
    pub fn decrypt_backward(&mut self, payload: &[u8]) -> Option<(usize, RelayCell)> {
        let mut buf = payload.to_vec();
        for i in 0..self.hops.len() {
            self.hops[i].bwd_cipher.apply_keystream(&mut buf);
            if RelayCell::looks_recognized(&buf) {
                let zero = RelayCell::with_zero_digest(&buf);
                let (next_digest, d4) = digest4(&self.hops[i].bwd_digest, &zero);
                if d4 == RelayCell::digest_field(&buf) {
                    self.hops[i].bwd_digest = next_digest;
                    let (rc, _) = RelayCell::decode(&buf)?;
                    return Some((i, rc));
                }
            }
        }
        None
    }
}

/// What a relay concludes about one forward cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayCryptoOutcome {
    /// The cell is addressed to this hop.
    Recognized(RelayCell),
    /// Not ours: pass the (one-layer-stripped) payload to the next hop.
    Forward(Vec<u8>),
}

/// A relay's end of one circuit.
#[derive(Debug, Clone)]
pub struct RelayCrypto {
    state: HopState,
}

impl RelayCrypto {
    pub fn new(keys: &HopKeys) -> RelayCrypto {
        RelayCrypto {
            state: HopState::new(keys),
        }
    }

    /// Strips this hop's forward layer and decides whether the cell is
    /// addressed here.
    pub fn process_forward(&mut self, payload: &[u8]) -> RelayCryptoOutcome {
        let mut buf = payload.to_vec();
        self.state.fwd_cipher.apply_keystream(&mut buf);
        if RelayCell::looks_recognized(&buf) {
            let zero = RelayCell::with_zero_digest(&buf);
            let (next_digest, d4) = digest4(&self.state.fwd_digest, &zero);
            if d4 == RelayCell::digest_field(&buf) {
                if let Some((rc, _)) = RelayCell::decode(&buf) {
                    self.state.fwd_digest = next_digest;
                    return RelayCryptoOutcome::Recognized(rc);
                }
            }
        }
        RelayCryptoOutcome::Forward(buf)
    }

    /// Originates a backward cell from this hop.
    pub fn encrypt_backward(&mut self, rc: &RelayCell) -> Vec<u8> {
        let zero = rc.encode_zero_digest();
        let (next_digest, d4) = digest4(&self.state.bwd_digest, &zero);
        self.state.bwd_digest = next_digest;
        let mut payload = rc.encode_with_digest(d4);
        self.state.bwd_cipher.apply_keystream(&mut payload);
        payload
    }

    /// Adds this hop's backward layer to a cell in transit toward the
    /// client (middle relays call this on every backward cell).
    pub fn reencrypt_backward(&mut self, payload: &[u8]) -> Vec<u8> {
        let mut buf = payload.to_vec();
        self.state.bwd_cipher.apply_keystream(&mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::RelayCmd;
    use onion_crypto::{
        client_handshake_finish, client_handshake_start, server_handshake, KeyPair,
    };

    /// Runs real ntor handshakes to produce matched client/relay key
    /// state for an `n`-hop circuit.
    fn circuit(n: usize) -> (ClientCrypto, Vec<RelayCrypto>) {
        let mut client = ClientCrypto::new();
        let mut relays = Vec::new();
        for i in 0..n {
            let identity = KeyPair::from_secret([(i as u8) + 1; 32]);
            let c_eph = KeyPair::from_secret([(i as u8) + 100; 32]);
            let s_eph = KeyPair::from_secret([(i as u8) + 200; 32]);
            let (state, x) = client_handshake_start(c_eph, identity.public);
            let (reply, server_keys) = server_handshake(&identity, s_eph, &x);
            let client_keys = client_handshake_finish(&state, &reply).unwrap();
            assert_eq!(client_keys, server_keys);
            client.add_hop(&client_keys);
            relays.push(RelayCrypto::new(&server_keys));
        }
        (client, relays)
    }

    fn rc(tag: u8) -> RelayCell {
        RelayCell::new(RelayCmd::Data, 7, vec![tag; 20])
    }

    #[test]
    fn forward_to_each_hop_of_three() {
        let (mut client, mut relays) = circuit(3);
        for target in 0..3 {
            let cell = rc(target as u8);
            let mut payload = client.encrypt_forward(target, &cell);
            for (i, relay) in relays.iter_mut().enumerate() {
                match relay.process_forward(&payload) {
                    RelayCryptoOutcome::Recognized(got) => {
                        assert_eq!(i, target, "recognized at wrong hop");
                        assert_eq!(got, cell);
                        payload.clear();
                        break;
                    }
                    RelayCryptoOutcome::Forward(next) => {
                        assert!(i < target, "should have been recognized by now");
                        payload = next;
                    }
                }
            }
            assert!(payload.is_empty(), "cell for hop {target} never recognized");
        }
    }

    #[test]
    fn backward_from_each_hop_of_three() {
        let (mut client, mut relays) = circuit(3);
        for source in (0..3).rev() {
            let cell = rc(source as u8 + 50);
            let mut payload = relays[source].encrypt_backward(&cell);
            // Relays between source and client add their layers.
            for i in (0..source).rev() {
                payload = relays[i].reencrypt_backward(&payload);
            }
            let (hop, got) = client.decrypt_backward(&payload).expect("recognized");
            assert_eq!(hop, source);
            assert_eq!(got, cell);
        }
    }

    #[test]
    fn multi_hop_interleaving() {
        // Cells to different hops interleave without desyncing streams:
        // exactly the traffic pattern Ting produces (probes to the exit
        // while EXTEND2s went to earlier hops during construction).
        let (mut client, mut relays) = circuit(4);
        let schedule = [3usize, 1, 3, 0, 2, 3, 3, 1, 2, 0, 3, 3];
        for (n, &target) in schedule.iter().enumerate() {
            let cell = RelayCell::new(RelayCmd::Data, target as u16, vec![n as u8; 8]);
            let mut payload = client.encrypt_forward(target, &cell);
            for (i, relay) in relays.iter_mut().enumerate() {
                match relay.process_forward(&payload) {
                    RelayCryptoOutcome::Recognized(got) => {
                        assert_eq!(i, target);
                        assert_eq!(got, cell);
                        break;
                    }
                    RelayCryptoOutcome::Forward(next) => payload = next,
                }
            }
            // And a reply comes back from the same hop.
            let reply = RelayCell::new(RelayCmd::Data, target as u16, vec![0xee, n as u8]);
            let mut back = relays[target].encrypt_backward(&reply);
            for i in (0..target).rev() {
                back = relays[i].reencrypt_backward(&back);
            }
            let (hop, got) = client.decrypt_backward(&back).unwrap();
            assert_eq!(hop, target);
            assert_eq!(got, reply);
        }
    }

    #[test]
    fn middle_relay_cannot_read_exit_cells() {
        let (mut client, mut relays) = circuit(3);
        let cell = rc(1);
        let payload = client.encrypt_forward(2, &cell);
        // Hop 0 strips its layer but must not recognize.
        match relays[0].process_forward(&payload) {
            RelayCryptoOutcome::Forward(stripped) => {
                // The stripped payload still reveals nothing: it differs
                // from the plaintext encoding everywhere that matters.
                let plain = cell.encode_zero_digest();
                assert_ne!(&stripped[..40], &plain[..40]);
            }
            RelayCryptoOutcome::Recognized(_) => panic!("middle hop recognized exit cell"),
        }
    }

    #[test]
    fn corrupted_backward_cell_rejected() {
        let (mut client, mut relays) = circuit(2);
        let cell = rc(9);
        let mut payload = relays[1].encrypt_backward(&cell);
        payload = relays[0].reencrypt_backward(&payload);
        payload[100] ^= 0xff;
        assert!(client.decrypt_backward(&payload).is_none());
    }

    #[test]
    fn wrong_order_desyncs() {
        // Delivering backward cells out of order breaks the keystream —
        // the property that forces FIFO delivery in the simulator.
        let (mut client, mut relays) = circuit(1);
        let c1 = rc(1);
        let c2 = rc(2);
        let p1 = relays[0].encrypt_backward(&c1);
        let p2 = relays[0].encrypt_backward(&c2);
        // Deliver p2 first: not recognized (keystream mismatch).
        assert!(client.decrypt_backward(&p2).is_none());
        let _ = p1;
    }

    #[test]
    fn single_hop_roundtrip() {
        let (mut client, mut relays) = circuit(1);
        let cell = rc(3);
        let payload = client.encrypt_forward(0, &cell);
        match relays[0].process_forward(&payload) {
            RelayCryptoOutcome::Recognized(got) => assert_eq!(got, cell),
            _ => panic!("one-hop cell not recognized"),
        }
    }

    #[test]
    #[should_panic]
    fn encrypting_to_unestablished_hop_panics() {
        let (mut client, _) = circuit(1);
        let _ = client.encrypt_forward(1, &rc(0));
    }

    #[test]
    fn ten_hop_circuit_works() {
        // §5.2.2 builds circuits up to length 10; the crypto must too.
        let (mut client, mut relays) = circuit(10);
        let cell = rc(42);
        let mut payload = client.encrypt_forward(9, &cell);
        for (i, relay) in relays.iter_mut().take(9).enumerate() {
            match relay.process_forward(&payload) {
                RelayCryptoOutcome::Forward(next) => payload = next,
                RelayCryptoOutcome::Recognized(_) => panic!("early recognition at {i}"),
            }
        }
        match relays[9].process_forward(&payload) {
            RelayCryptoOutcome::Recognized(got) => assert_eq!(got, cell),
            _ => panic!("not recognized at exit"),
        }
    }
}
