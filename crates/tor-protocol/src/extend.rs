//! Circuit-extension payloads: CREATE2/CREATED2 cell bodies and the
//! EXTEND2/EXTENDED2 relay-cell bodies that tunnel them one hop further.
//!
//! An EXTEND2 carries a link specifier (here, the target relay's node
//! id — the simulator's stand-in for an IP:port + identity digest) plus
//! the client's ntor onion skin; the receiving relay copies the onion
//! skin into a CREATE2 on a fresh link circuit and relays the CREATED2
//! reply back inside an EXTENDED2.

use bytes::{Buf, BufMut};

/// EXTEND2 relay-cell body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extend2 {
    /// The relay to extend to (simulator node id).
    pub target: u32,
    /// Client's ephemeral X25519 public key (the ntor onion skin).
    pub client_pk: [u8; 32],
}

impl Extend2 {
    pub const LEN: usize = 4 + 32;

    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::LEN);
        buf.put_u32(self.target);
        buf.extend_from_slice(&self.client_pk);
        buf
    }

    pub fn decode(mut bytes: &[u8]) -> Option<Extend2> {
        if bytes.len() != Self::LEN {
            return None;
        }
        let target = bytes.get_u32();
        let mut client_pk = [0u8; 32];
        bytes.copy_to_slice(&mut client_pk);
        Some(Extend2 { target, client_pk })
    }
}

/// EXTENDED2 relay-cell body / CREATED2 cell body: the relay's ntor
/// reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extended2 {
    /// Relay's ephemeral X25519 public key.
    pub server_pk: [u8; 32],
    /// ntor authentication tag.
    pub auth: [u8; 32],
}

impl Extended2 {
    pub const LEN: usize = 32 + 32;

    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(Self::LEN);
        buf.extend_from_slice(&self.server_pk);
        buf.extend_from_slice(&self.auth);
        buf
    }

    pub fn decode(mut bytes: &[u8]) -> Option<Extended2> {
        if bytes.len() != Self::LEN {
            return None;
        }
        let mut server_pk = [0u8; 32];
        bytes.copy_to_slice(&mut server_pk);
        let mut auth = [0u8; 32];
        bytes.copy_to_slice(&mut auth);
        Some(Extended2 { server_pk, auth })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend2_roundtrip() {
        let e = Extend2 {
            target: 1234,
            client_pk: [7u8; 32],
        };
        assert_eq!(Extend2::decode(&e.encode()), Some(e));
    }

    #[test]
    fn extended2_roundtrip() {
        let e = Extended2 {
            server_pk: [1u8; 32],
            auth: [2u8; 32],
        };
        assert_eq!(Extended2::decode(&e.encode()), Some(e));
    }

    #[test]
    fn wrong_lengths_rejected() {
        assert!(Extend2::decode(&[0u8; Extend2::LEN - 1]).is_none());
        assert!(Extend2::decode(&[0u8; Extend2::LEN + 1]).is_none());
        assert!(Extended2::decode(&[0u8; 10]).is_none());
    }

    #[test]
    fn extend2_fits_in_relay_cell() {
        const _: () = assert!(Extend2::LEN <= crate::relay::RELAY_DATA_LEN);
        const _: () = assert!(Extended2::LEN <= crate::relay::RELAY_DATA_LEN);
    }
}
