//! Fixed-size link cells.
//!
//! Every unit on a Tor link is a cell: a 4-byte circuit id, a 1-byte
//! command, and a fixed 509-byte payload (link protocol ≥ 4). Fixed size
//! is load-bearing for anonymity (cells are indistinguishable on the
//! wire) and for Ting (every echo probe costs exactly one cell each way).

use bytes::{Buf, BufMut};

/// Payload bytes in every cell.
pub const PAYLOAD_LEN: usize = 509;
/// Total encoded size: circ_id (4) + command (1) + payload.
pub const CELL_LEN: usize = 4 + 1 + PAYLOAD_LEN;

/// Identifies a circuit on one link (hop-local, not end-to-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CircuitId(pub u32);

/// Cell commands (the subset Ting's circuits exercise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CellCommand {
    /// Circuit creation request carrying an ntor onion skin.
    Create2 = 10,
    /// Circuit creation reply.
    Created2 = 11,
    /// An onion-encrypted relay cell.
    Relay = 3,
    /// Circuit teardown.
    Destroy = 4,
}

impl CellCommand {
    pub fn from_u8(v: u8) -> Option<CellCommand> {
        match v {
            10 => Some(CellCommand::Create2),
            11 => Some(CellCommand::Created2),
            3 => Some(CellCommand::Relay),
            4 => Some(CellCommand::Destroy),
            _ => None,
        }
    }
}

/// One link cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    pub circ_id: CircuitId,
    pub command: CellCommand,
    /// Always exactly [`PAYLOAD_LEN`] bytes.
    pub payload: Vec<u8>,
}

impl Cell {
    /// Builds a cell, zero-padding (or rejecting an over-long) payload.
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`PAYLOAD_LEN`].
    pub fn new(circ_id: CircuitId, command: CellCommand, mut payload: Vec<u8>) -> Cell {
        assert!(
            payload.len() <= PAYLOAD_LEN,
            "cell payload too long: {}",
            payload.len()
        );
        payload.resize(PAYLOAD_LEN, 0);
        Cell {
            circ_id,
            command,
            payload,
        }
    }

    /// Serializes to exactly [`CELL_LEN`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(CELL_LEN);
        buf.put_u32(self.circ_id.0);
        buf.put_u8(self.command as u8);
        buf.extend_from_slice(&self.payload);
        debug_assert_eq!(buf.len(), CELL_LEN);
        buf
    }

    /// Parses a cell. Returns `None` on wrong length or unknown command
    /// (a well-behaved relay drops garbage rather than panicking).
    pub fn decode(mut bytes: &[u8]) -> Option<Cell> {
        if bytes.len() != CELL_LEN {
            return None;
        }
        let circ_id = CircuitId(bytes.get_u32());
        let command = CellCommand::from_u8(bytes.get_u8())?;
        Some(Cell {
            circ_id,
            command,
            payload: bytes.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let c = Cell::new(CircuitId(0xdeadbeef), CellCommand::Relay, vec![1, 2, 3]);
        let bytes = c.encode();
        assert_eq!(bytes.len(), CELL_LEN);
        let d = Cell::decode(&bytes).unwrap();
        assert_eq!(c, d);
        assert_eq!(d.payload.len(), PAYLOAD_LEN);
        assert_eq!(&d.payload[..3], &[1, 2, 3]);
        assert!(d.payload[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn all_commands_roundtrip() {
        for cmd in [
            CellCommand::Create2,
            CellCommand::Created2,
            CellCommand::Relay,
            CellCommand::Destroy,
        ] {
            let c = Cell::new(CircuitId(7), cmd, vec![]);
            assert_eq!(Cell::decode(&c.encode()).unwrap().command, cmd);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(Cell::decode(&[0u8; CELL_LEN - 1]).is_none());
        assert!(Cell::decode(&[0u8; CELL_LEN + 1]).is_none());
        assert!(Cell::decode(&[]).is_none());
    }

    #[test]
    fn unknown_command_rejected() {
        let mut bytes = Cell::new(CircuitId(1), CellCommand::Relay, vec![]).encode();
        bytes[4] = 99; // bogus command
        assert!(Cell::decode(&bytes).is_none());
    }

    #[test]
    #[should_panic]
    fn oversize_payload_rejected() {
        let _ = Cell::new(CircuitId(1), CellCommand::Relay, vec![0; PAYLOAD_LEN + 1]);
    }

    #[test]
    fn full_payload_accepted() {
        let c = Cell::new(CircuitId(1), CellCommand::Relay, vec![0xab; PAYLOAD_LEN]);
        assert_eq!(Cell::decode(&c.encode()).unwrap(), c);
    }
}
