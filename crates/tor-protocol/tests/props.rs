//! Property tests: the onion invariant — encrypt ∘ (hop-by-hop decrypt)
//! is the identity for arbitrary payloads, circuit lengths, and
//! interleavings.

use onion_crypto::{client_handshake_finish, client_handshake_start, server_handshake, KeyPair};
use proptest::prelude::*;
use tor_protocol::{
    Cell, CellCommand, CircuitId, ClientCrypto, RelayCell, RelayCmd, RelayCrypto,
    RelayCryptoOutcome, RELAY_DATA_LEN,
};

fn circuit(n: usize, seed: u8) -> (ClientCrypto, Vec<RelayCrypto>) {
    let mut client = ClientCrypto::new();
    let mut relays = Vec::new();
    for i in 0..n {
        let identity = KeyPair::from_secret([seed.wrapping_add(i as u8).wrapping_add(1); 32]);
        let c_eph = KeyPair::from_secret([seed.wrapping_add(i as u8).wrapping_add(101); 32]);
        let s_eph = KeyPair::from_secret([seed.wrapping_add(i as u8).wrapping_add(201); 32]);
        let (state, x) = client_handshake_start(c_eph, identity.public);
        let (reply, server_keys) = server_handshake(&identity, s_eph, &x);
        let client_keys = client_handshake_finish(&state, &reply).unwrap();
        client.add_hop(&client_keys);
        relays.push(RelayCrypto::new(&server_keys));
    }
    (client, relays)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cell_encode_decode_roundtrip(
        circ in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..tor_protocol::PAYLOAD_LEN),
    ) {
        let c = Cell::new(CircuitId(circ), CellCommand::Relay, data);
        prop_assert_eq!(Cell::decode(&c.encode()), Some(c));
    }

    #[test]
    fn relay_cell_roundtrip(
        stream in any::<u16>(),
        data in prop::collection::vec(any::<u8>(), 0..RELAY_DATA_LEN),
        digest in any::<[u8; 4]>(),
    ) {
        let rc = RelayCell::new(RelayCmd::Data, stream, data);
        let (decoded, d) = RelayCell::decode(&rc.encode_with_digest(digest)).unwrap();
        prop_assert_eq!(decoded, rc);
        prop_assert_eq!(d, digest);
    }

    #[test]
    fn onion_roundtrip_arbitrary_schedule(
        n in 1usize..8,
        seed in any::<u8>(),
        schedule in prop::collection::vec((0usize..8, prop::collection::vec(any::<u8>(), 0..64)), 1..20),
    ) {
        let (mut client, mut relays) = circuit(n, seed);
        for (raw_target, data) in schedule {
            let target = raw_target % n;
            let cell = RelayCell::new(RelayCmd::Data, target as u16, data.clone());
            // Forward.
            let mut payload = client.encrypt_forward(target, &cell);
            let mut recognized_at = None;
            for (i, relay) in relays.iter_mut().enumerate().take(target + 1) {
                match relay.process_forward(&payload) {
                    RelayCryptoOutcome::Recognized(got) => {
                        prop_assert_eq!(&got, &cell);
                        recognized_at = Some(i);
                        break;
                    }
                    RelayCryptoOutcome::Forward(next) => payload = next,
                }
            }
            prop_assert_eq!(recognized_at, Some(target));
            // Backward reply.
            let reply = RelayCell::new(RelayCmd::Data, target as u16, data);
            let mut back = relays[target].encrypt_backward(&reply);
            for i in (0..target).rev() {
                back = relays[i].reencrypt_backward(&back);
            }
            let (hop, got) = client.decrypt_backward(&back).unwrap();
            prop_assert_eq!(hop, target);
            prop_assert_eq!(got, reply);
        }
    }

    #[test]
    fn flipped_bits_never_accepted(
        n in 1usize..5,
        seed in any::<u8>(),
        byte_idx in 0usize..tor_protocol::PAYLOAD_LEN,
        bit in 0u8..8,
    ) {
        let (mut client, mut relays) = circuit(n, seed);
        let cell = RelayCell::new(RelayCmd::Data, 1, vec![0x5a; 32]);
        let mut payload = client.encrypt_forward(n - 1, &cell);
        payload[byte_idx] ^= 1 << bit;
        // The corrupted cell may be forwarded along, but no relay may
        // accept it as a valid recognized cell with intact contents.
        for relay in relays.iter_mut() {
            match relay.process_forward(&payload) {
                RelayCryptoOutcome::Recognized(got) => {
                    // Only acceptable if the flip didn't land in a
                    // digest-protected position AND contents match; the
                    // digest covers the whole payload, so contents must
                    // match the original if accepted.
                    prop_assert_eq!(got, cell.clone());
                    break;
                }
                RelayCryptoOutcome::Forward(next) => payload = next,
            }
        }
    }
}
