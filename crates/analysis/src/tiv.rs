//! Triangle-inequality violations (§5.2.1, Figs. 14–15).
//!
//! A TIV exists for a pair `(s, d)` when some relay `r` satisfies
//! `R(s,r) + R(r,d) < R(s,d)`. The paper finds a TIV for 69% of all
//! pairs in its 50-node dataset, with a median best saving of 7.5% and
//! a tenth of TIVs saving 28% or more — evidence that geographic
//! distance cannot substitute for measured RTTs.

use netsim::NodeId;
use ting::RttMatrix;

/// The best detour found for one pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TivFinding {
    pub src: NodeId,
    pub dst: NodeId,
    /// Direct-path RTT (ms).
    pub direct_ms: f64,
    /// Best `R(s,r) + R(r,d)` over all relays (ms).
    pub best_detour_ms: f64,
    /// The relay achieving it.
    pub best_relay: NodeId,
}

impl TivFinding {
    /// Whether the detour beats the direct path.
    pub fn is_violation(&self) -> bool {
        self.best_detour_ms < self.direct_ms
    }

    /// Relative saving in percent (Fig. 14's x-axis); 0 when no TIV.
    pub fn savings_percent(&self) -> f64 {
        if !self.is_violation() {
            return 0.0;
        }
        (1.0 - self.best_detour_ms / self.direct_ms) * 100.0
    }
}

/// Whole-matrix TIV analysis.
#[derive(Debug, Clone)]
pub struct TivReport {
    pub findings: Vec<TivFinding>,
}

impl TivReport {
    /// Scans every measured pair for its best detour, via the shared
    /// index-space kernel ([`ting::RttView::best_detour`]) that also
    /// powers the latency oracle's ShorTor-style via-relay queries —
    /// one implementation, two consumers, bit-identical answers.
    ///
    /// # Panics
    /// Panics if the matrix is incomplete.
    pub fn analyze(matrix: &RttMatrix) -> TivReport {
        assert!(matrix.is_complete(), "TIV analysis needs all pairs");
        let view = matrix.view();
        let nodes = matrix.nodes();
        let mut findings = Vec::new();
        for (i, &s) in nodes.iter().enumerate() {
            for (j, &d) in nodes.iter().enumerate().skip(i + 1) {
                let direct = view.get_idx(i as u32, j as u32).expect("complete");
                // A pair with no third relay (n = 2) keeps the
                // historical "no detour" encoding: +∞ through itself.
                let (best_relay, best_detour_ms) = match view.best_detour(i as u32, j as u32) {
                    Some(best) => (view.node(best.via), best.rtt_ms),
                    None => (s, f64::INFINITY),
                };
                findings.push(TivFinding {
                    src: s,
                    dst: d,
                    direct_ms: direct,
                    best_detour_ms,
                    best_relay,
                });
            }
        }
        TivReport { findings }
    }

    /// Fraction of pairs with at least one TIV (the paper's 69%).
    pub fn violation_fraction(&self) -> f64 {
        if self.findings.is_empty() {
            return 0.0;
        }
        self.findings.iter().filter(|f| f.is_violation()).count() as f64
            / self.findings.len() as f64
    }

    /// Savings percentages of the violating pairs (Fig. 14's sample).
    pub fn savings_distribution(&self) -> Vec<f64> {
        self.findings
            .iter()
            .filter(|f| f.is_violation())
            .map(|f| f.savings_percent())
            .collect()
    }

    /// `(direct, detour)` scatter points for the violating pairs
    /// (Fig. 15).
    pub fn scatter(&self) -> Vec<(f64, f64)> {
        self.findings
            .iter()
            .filter(|f| f.is_violation())
            .map(|f| (f.direct_ms, f.best_detour_ms))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_matrix() -> RttMatrix {
        // Triangle: A—B expensive (100), A—C and C—B cheap (20 + 20):
        // the detour through C saves 60%.
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        let mut m = RttMatrix::new(vec![a, b, c, d]);
        m.set(a, b, 100.0);
        m.set(a, c, 20.0);
        m.set(c, b, 20.0);
        // d is far from everything: no TIV through or for it.
        m.set(a, d, 300.0);
        m.set(b, d, 300.0);
        m.set(c, d, 300.0);
        m
    }

    #[test]
    fn finds_planted_tiv() {
        let report = TivReport::analyze(&planted_matrix());
        let ab = report
            .findings
            .iter()
            .find(|f| f.src == NodeId(0) && f.dst == NodeId(1))
            .unwrap();
        assert!(ab.is_violation());
        assert_eq!(ab.best_relay, NodeId(2));
        assert_eq!(ab.best_detour_ms, 40.0);
        assert!((ab.savings_percent() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn non_tiv_pairs_report_no_savings() {
        let report = TivReport::analyze(&planted_matrix());
        let ac = report
            .findings
            .iter()
            .find(|f| f.src == NodeId(0) && f.dst == NodeId(2))
            .unwrap();
        assert!(!ac.is_violation());
        assert_eq!(ac.savings_percent(), 0.0);
    }

    #[test]
    fn violation_fraction_counts_correctly() {
        let report = TivReport::analyze(&planted_matrix());
        // Only A–B has a TIV among the 6 pairs.
        assert!((report.violation_fraction() - 1.0 / 6.0).abs() < 1e-9);
        assert_eq!(report.savings_distribution().len(), 1);
        assert_eq!(report.scatter(), vec![(100.0, 40.0)]);
    }

    #[test]
    fn detour_never_exceeds_direct_in_scatter() {
        let report = TivReport::analyze(&planted_matrix());
        for (direct, detour) in report.scatter() {
            assert!(detour < direct);
        }
    }

    #[test]
    #[should_panic]
    fn incomplete_matrix_rejected() {
        let m = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        let _ = TivReport::analyze(&m);
    }
}
