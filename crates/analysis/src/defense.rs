//! Defenses against RTT-assisted deanonymization (§5.1.3).
//!
//! The paper names two countermeasures and evaluates neither: "One
//! countermeasure would be to artificially inflate latencies within a
//! circuit … Another approach that would slow down, but not completely
//! eliminate, this deanonymization attack would be to randomize the
//! length of circuits." This module evaluates both quantitatively:
//!
//! * [`evaluate_padding`] — victims add random per-circuit latency
//!   padding; the attacker's RTT budget becomes an over-estimate, so
//!   too-large filtering and Algorithm 1's scores degrade toward the
//!   brute-force baseline;
//! * [`evaluate_length_randomization`] — victims build 3-, 4-, or
//!   5-hop circuits; an attacker assuming three hops mis-models Re2e.
//!
//! Both are measured the same way as Fig. 12: median fraction of the
//! network probed.

use crate::deanon::{DeanonSimulator, Strategy};
use rand::Rng;
use ting::RttMatrix;

/// Outcome of a defense evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseOutcome {
    /// Median fraction probed with no defense.
    pub undefended: f64,
    /// Median fraction probed with the defense active.
    pub defended: f64,
}

impl DefenseOutcome {
    /// How much of the attacker's advantage the defense removes,
    /// relative to the brute-force baseline `unaware`: 1.0 means the
    /// attack degraded all the way back to brute force.
    pub fn advantage_removed(&self, unaware: f64) -> f64 {
        if unaware <= self.undefended {
            return 0.0;
        }
        ((self.defended - self.undefended) / (unaware - self.undefended)).clamp(0.0, 1.0)
    }
}

/// Evaluates latency padding: before each attack, the victim inflates
/// its end-to-end RTT by a uniform draw from `[0, padding_ms]`. The
/// attacker (who knows only the padded Re2e) runs `strategy`.
pub fn evaluate_padding<R: Rng + ?Sized>(
    matrix: &RttMatrix,
    strategy: Strategy,
    padding_ms: f64,
    runs: usize,
    rng: &mut R,
) -> DefenseOutcome {
    let sim = DeanonSimulator::new(matrix);
    let mut base = Vec::with_capacity(runs);
    let mut defended = Vec::with_capacity(runs);
    for _ in 0..runs {
        base.push(sim.run_once(strategy, rng).fraction_probed());
        let pad = rng.gen_range(0.0..padding_ms.max(1e-9));
        defended.push(sim.run_once_padded(strategy, pad, rng).fraction_probed());
    }
    DefenseOutcome {
        undefended: stats::median(&base).expect("runs > 0"),
        defended: stats::median(&defended).expect("runs > 0"),
    }
}

/// Evaluates circuit-length randomization: the victim uses a uniformly
/// random length from `lengths`; the attacker still assumes the default
/// three hops when filtering (extra hops inflate Re2e like padding
/// equal to the extra legs' RTTs).
pub fn evaluate_length_randomization<R: Rng + ?Sized>(
    matrix: &RttMatrix,
    strategy: Strategy,
    lengths: &[usize],
    runs: usize,
    rng: &mut R,
) -> DefenseOutcome {
    assert!(!lengths.is_empty());
    let sim = DeanonSimulator::new(matrix);
    let nodes = matrix.nodes();
    let mut base = Vec::with_capacity(runs);
    let mut defended = Vec::with_capacity(runs);
    for _ in 0..runs {
        base.push(sim.run_once(strategy, rng).fraction_probed());
        // Extra hops beyond 3 contribute unmodelled RTT ≈ that many
        // random inter-relay RTTs on top of the three-hop budget.
        let len = lengths[rng.gen_range(0..lengths.len())];
        let extra_hops = len.saturating_sub(3);
        let mut pad = 0.0;
        for _ in 0..extra_hops {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let b = nodes[rng.gen_range(0..nodes.len())];
            if a != b {
                pad += matrix.get(a, b).expect("complete");
            }
        }
        defended.push(sim.run_once_padded(strategy, pad, rng).fraction_probed());
    }
    DefenseOutcome {
        undefended: stats::median(&base).expect("runs > 0"),
        defended: stats::median(&defended).expect("runs > 0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn matrix(n: u32, seed: u64) -> RttMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let pos: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..300.0)).collect();
        let mut m = RttMatrix::new(nodes.clone());
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                m.set(
                    nodes[i],
                    nodes[j],
                    (pos[i] - pos[j]).abs() + rng.gen_range(5.0..20.0),
                );
            }
        }
        m
    }

    #[test]
    fn padding_degrades_the_attack() {
        let m = matrix(30, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let o = evaluate_padding(&m, Strategy::IgnoreTooLarge, 400.0, 300, &mut rng);
        assert!(
            o.defended > o.undefended,
            "padding didn't help: {} vs {}",
            o.defended,
            o.undefended
        );
    }

    #[test]
    fn small_padding_barely_matters() {
        let m = matrix(30, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let o = evaluate_padding(&m, Strategy::IgnoreTooLarge, 1.0, 300, &mut rng);
        assert!((o.defended - o.undefended).abs() < 0.08);
    }

    #[test]
    fn length_randomization_slows_but_does_not_stop() {
        // §5.1.3: "would slow down, but not completely eliminate".
        let m = matrix(30, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let o =
            evaluate_length_randomization(&m, Strategy::IgnoreTooLarge, &[3, 4, 5], 300, &mut rng);
        assert!(o.defended >= o.undefended - 0.02);
        // The attack still terminates below exhaustive search a lot of
        // the time: fraction stays < 1.
        assert!(o.defended < 1.0);
    }

    #[test]
    fn advantage_removed_is_bounded() {
        let o = DefenseOutcome {
            undefended: 0.5,
            defended: 0.65,
        };
        let frac = o.advantage_removed(0.72);
        assert!(frac > 0.0 && frac <= 1.0);
        assert!((frac - (0.15 / 0.22)).abs() < 1e-9);
    }
}
