//! Applications of Ting's all-pairs RTT data (paper §5).
//!
//! Three disparate consumers of an [`ting::RttMatrix`]:
//!
//! * [`deanon`] — §5.1: speeding up active-probing deanonymization of
//!   Tor circuits. Three strategies (brute force, ignore-too-large-RTTs,
//!   and Algorithm 1's informed target selection) plus the
//!   bandwidth-weighted variants, with the probe-count accounting used
//!   in Figs. 12–13.
//! * [`tiv`] — §5.2.1: triangle-inequality violations. Finds detour
//!   relays that beat direct paths (Figs. 14–15).
//! * [`circuits`] — §5.2.2: longer circuits. Samples ℓ-hop circuits for
//!   ℓ = 3..10, bins their RTTs, scales counts to C(n, ℓ), and computes
//!   the node-selection-probability diversity metric (Figs. 16–17).
//! * [`coverage`] — §5.3: Tor as a measurement platform. /24 counting
//!   and residential classification over a relay population (Fig. 18).

pub mod circuits;
pub mod coverage;
pub mod deanon;
pub mod defense;
pub mod geobaseline;
pub mod pathsel;
pub mod tiv;

pub use circuits::{CircuitLengthAnalysis, LengthBinSeries};
pub use coverage::CoverageReport;
pub use deanon::{DeanonOutcome, DeanonSimulator, Strategy};
pub use defense::{evaluate_length_randomization, evaluate_padding, DefenseOutcome};
pub use geobaseline::GeoPredictor;
pub use pathsel::{PathSelector, PathSelectorConfig, SelectionProfile};
pub use tiv::{TivFinding, TivReport};
