//! Geographic distance as a latency predictor — the proxy Ting
//! obsoletes (§5.2).
//!
//! "LASTor relies on geographic distances as a proxy for latencies;
//! while we have shown a strong correlation between distance and RTT
//! (Section 4), we demonstrate here that there are many instances where
//! latency can be reduced in ways that geographic distance cannot
//! predict… Distances do not violate the triangle inequality, while Tor
//! often does."
//!
//! [`GeoPredictor`] fits `RTT ≈ slope·km + intercept` on geolocation
//! data (error-prone, like any real deployment's) and predicts pair
//! RTTs from it. The two structural comparisons against measured data:
//!
//! * rank agreement (how much ordering information distance preserves);
//! * TIV blindness: a distance predictor finds exactly **zero** TIVs,
//!   so every detour opportunity is invisible to it.

use geo::{GeoDb, GeoPoint};
use netsim::NodeId;
use rand::Rng;
use stats::{linear_fit, LinearFit};
use ting::RttMatrix;

/// A fitted distance→RTT predictor.
#[derive(Debug, Clone)]
pub struct GeoPredictor {
    fit: LinearFit,
    positions: Vec<(NodeId, GeoPoint)>,
}

impl GeoPredictor {
    /// Fits on a *training* matrix (the measurements a LASTor-style
    /// system would bootstrap from) plus geolocated positions.
    ///
    /// Returns `None` if fewer than two geolocated pairs exist.
    pub fn fit<R: Rng + ?Sized>(
        matrix: &RttMatrix,
        geodb: &GeoDb,
        rng: &mut R,
    ) -> Option<GeoPredictor> {
        let mut positions = Vec::new();
        for &n in matrix.nodes() {
            let est = geodb.estimate(n.index(), rng)?;
            positions.push((n, est));
        }
        let lookup = |n: NodeId| -> GeoPoint {
            positions
                .iter()
                .find(|(m, _)| *m == n)
                .map(|(_, p)| *p)
                .expect("position exists")
        };
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (a, b, rtt) in matrix.pairs() {
            xs.push(geo::great_circle_km(lookup(a), lookup(b)));
            ys.push(rtt);
        }
        Some(GeoPredictor {
            fit: linear_fit(&xs, &ys)?,
            positions,
        })
    }

    /// The underlying fit.
    pub fn fit_params(&self) -> LinearFit {
        self.fit
    }

    /// Predicted RTT for a pair (ms). `None` if either node was not in
    /// the training set.
    pub fn predict(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let pa = self.positions.iter().find(|(n, _)| *n == a)?.1;
        let pb = self.positions.iter().find(|(n, _)| *n == b)?.1;
        Some(self.fit.predict(geo::great_circle_km(pa, pb)).max(0.0))
    }

    /// A full predicted matrix over the training nodes.
    pub fn predicted_matrix(&self) -> RttMatrix {
        let nodes: Vec<NodeId> = self.positions.iter().map(|(n, _)| *n).collect();
        let mut m = RttMatrix::new(nodes.clone());
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                m.set(a, b, self.predict(a, b).expect("trained"));
            }
        }
        m
    }

    /// Spearman rank correlation between predictions and `truth`.
    pub fn rank_agreement(&self, truth: &RttMatrix) -> Option<f64> {
        let mut pred = Vec::new();
        let mut real = Vec::new();
        for (a, b, rtt) in truth.pairs() {
            pred.push(self.predict(a, b)?);
            real.push(rtt);
        }
        stats::spearman(&pred, &real)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiv::TivReport;
    use geo::GeoErrorModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tor_sim::TorNetworkBuilder;

    fn setup() -> (RttMatrix, GeoDb) {
        let mut net = TorNetworkBuilder::live(4001, 60).build();
        let nodes: Vec<NodeId> = net.relays.iter().copied().take(15).collect();
        let mut m = RttMatrix::new(nodes.clone());
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let t = net.true_rtt_ms(nodes[i], nodes[j]);
                m.set(nodes[i], nodes[j], t);
            }
        }
        let mut geodb = GeoDb::new(GeoErrorModel::default());
        for &n in &nodes {
            geodb.insert(n.index(), net.sim.underlay().node(n.index()).location);
        }
        (m, geodb)
    }

    #[test]
    fn distance_correlates_but_less_than_measurement() {
        let (truth, geodb) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let pred = GeoPredictor::fit(&truth, &geodb, &mut rng).unwrap();
        let rho = pred.rank_agreement(&truth).unwrap();
        // §4.5: strong correlation — but not Ting's 0.997.
        assert!(rho > 0.6, "distance lost all signal: {rho}");
        assert!(rho < 0.995, "distance implausibly perfect: {rho}");
    }

    #[test]
    fn geographic_predictions_have_no_tivs() {
        // The §5.2.1 structural point: distances obey the triangle
        // inequality, so the predictor is blind to every detour — but a
        // linear fit's positive intercept technically permits tiny
        // violations, so allow a sliver.
        let (truth, geodb) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        let pred = GeoPredictor::fit(&truth, &geodb, &mut rng).unwrap();
        let geo_matrix = pred.predicted_matrix();
        let geo_tivs = TivReport::analyze(&geo_matrix);
        let real_tivs = TivReport::analyze(&truth);
        // Distance predictor sees at most trivial savings; the real
        // matrix sees substantial ones.
        let geo_p90 = stats::quantile(
            &geo_tivs
                .savings_distribution()
                .iter()
                .copied()
                .chain(std::iter::once(0.0))
                .collect::<Vec<_>>(),
            0.9,
        )
        .unwrap();
        let real_best = real_tivs
            .savings_distribution()
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert!(
            real_best > geo_p90 + 5.0,
            "real detours ({real_best}%) should beat geo-visible ones ({geo_p90}%)"
        );
    }

    #[test]
    fn fit_slope_positive() {
        let (truth, geodb) = setup();
        let mut rng = SmallRng::seed_from_u64(3);
        let pred = GeoPredictor::fit(&truth, &geodb, &mut rng).unwrap();
        assert!(pred.fit_params().slope > 0.0);
        // Longer distance → larger prediction.
        let nodes = truth.nodes();
        let p = pred.predict(nodes[0], nodes[1]).unwrap();
        assert!(p >= 0.0);
    }

    #[test]
    fn unknown_node_predicts_none() {
        let (truth, geodb) = setup();
        let mut rng = SmallRng::seed_from_u64(4);
        let pred = GeoPredictor::fit(&truth, &geodb, &mut rng).unwrap();
        assert!(pred.predict(NodeId(9999), truth.nodes()[0]).is_none());
    }
}
