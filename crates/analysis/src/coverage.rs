//! Tor as a measurement platform: coverage analysis (§5.3, Fig. 18).
//!
//! Quantifies what the paper's final application depends on: how many
//! distinct /24 networks the relay population reaches, and what kinds
//! of hosts run relays (the extended Schulman-style residential
//! classifier over rDNS names; the paper finds ≥ 61% of named relays
//! residential and several hundred at named hosting companies).

use geo::{classify_hostname, HostClass};
use std::collections::HashSet;
use tor_sim::churn::PopulationRelay;

/// Aggregate coverage statistics over one relay population snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    pub total_relays: usize,
    pub unique_slash24: usize,
    pub unique_slash16: usize,
    /// Relays with a reverse-DNS name.
    pub named: usize,
    pub residential: usize,
    pub datacenter: usize,
    pub unknown_named: usize,
}

impl CoverageReport {
    /// Classifies a population (one consensus' worth of relays).
    pub fn analyze(relays: &[PopulationRelay]) -> CoverageReport {
        let mut s24: HashSet<[u8; 3]> = HashSet::new();
        let mut s16: HashSet<[u8; 2]> = HashSet::new();
        let mut named = 0;
        let mut residential = 0;
        let mut datacenter = 0;
        let mut unknown_named = 0;
        for r in relays {
            s24.insert(r.slash24());
            s16.insert([r.ip[0], r.ip[1]]);
            if let Some(name) = &r.rdns {
                named += 1;
                match classify_hostname(name) {
                    HostClass::Residential => residential += 1,
                    HostClass::Datacenter => datacenter += 1,
                    HostClass::Unknown => unknown_named += 1,
                }
            }
        }
        CoverageReport {
            total_relays: relays.len(),
            unique_slash24: s24.len(),
            unique_slash16: s16.len(),
            named,
            residential,
            datacenter,
            unknown_named,
        }
    }

    /// Fraction of *named* relays classified residential (the paper's
    /// "roughly 61%").
    pub fn residential_fraction_of_named(&self) -> f64 {
        if self.named == 0 {
            return 0.0;
        }
        self.residential as f64 / self.named as f64
    }

    /// Fraction of all relays that have an rDNS name at all.
    pub fn named_fraction(&self) -> f64 {
        if self.total_relays == 0 {
            return 0.0;
        }
        self.named as f64 / self.total_relays as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tor_sim::churn::{ChurnConfig, ChurnModel};

    #[test]
    fn report_on_default_population_matches_paper_shape() {
        let model = ChurnModel::new(ChurnConfig::default(), 42);
        let report = CoverageReport::analyze(model.relays());
        // §5.3 numbers: 6634 relays, 5426–6044 unique /24s, 1150
        // unnamed, ~61% of named relays residential.
        assert!(report.total_relays > 6000 && report.total_relays < 7000);
        assert!(
            report.unique_slash24 > 4800 && report.unique_slash24 < 6500,
            "/24s {}",
            report.unique_slash24
        );
        let res = report.residential_fraction_of_named();
        assert!((res - 0.61).abs() < 0.06, "residential {res}");
        let named = report.named_fraction();
        assert!((named - 0.83).abs() < 0.05, "named {named}");
        assert!(report.datacenter > 200, "datacenter {}", report.datacenter);
    }

    #[test]
    fn empty_population() {
        let report = CoverageReport::analyze(&[]);
        assert_eq!(report.total_relays, 0);
        assert_eq!(report.residential_fraction_of_named(), 0.0);
        assert_eq!(report.named_fraction(), 0.0);
    }

    #[test]
    fn counts_are_consistent() {
        let model = ChurnModel::new(ChurnConfig::default(), 7);
        let r = CoverageReport::analyze(model.relays());
        assert_eq!(r.named, r.residential + r.datacenter + r.unknown_named);
        assert!(r.unique_slash16 <= r.unique_slash24);
        assert!(r.unique_slash24 <= r.total_relays);
        assert!(r.named <= r.total_relays);
    }
}
