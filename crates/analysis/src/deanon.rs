//! Deanonymization of Tor circuits with RTT knowledge (§5.1).
//!
//! Threat model (§5.1.1): the attacker is the destination. It knows the
//! exit node `x`, its own RTT `r` to the exit, and the end-to-end RTT
//! `Re2e` of the victim circuit. It has a Murdoch–Danezis-style oracle
//! that can *probe* whether a given relay is on the circuit, but each
//! probe is expensive, so the figure of merit is **how many relays must
//! be probed** before both the entry and the middle are identified
//! (Fig. 12: medians 72% / 62% / 48% of the network for the three
//! strategies).
//!
//! The three strategies:
//!
//! 1. [`Strategy::RttUnaware`] — brute force in random order.
//! 2. [`Strategy::IgnoreTooLarge`] — skip relays that cannot possibly
//!    fit in the RTT budget, and re-prune after each on-circuit hit
//!    using the four §5.1.1 rules.
//! 3. [`Strategy::Informed`] — Algorithm 1: score every remaining relay
//!    by how close its best-case circuit's expected end-to-end RTT
//!    (`R(c) + r + µ`, with µ the dataset's mean RTT standing in for
//!    the unknown source→entry leg) comes to `Re2e`; probe the lowest
//!    score first.
//!
//! Weighted variants divide scores by bandwidth weight (§5.1.1,
//! "Weighted Node Selection") and the weighted baseline probes in
//! decreasing-weight order.

use netsim::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use ting::RttMatrix;

/// Probe-ordering strategies under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Brute force, uniform random order.
    RttUnaware,
    /// Random order over the not-ruled-out set, with implicit rule-outs.
    IgnoreTooLarge,
    /// Algorithm 1: informed target selection.
    Informed,
    /// Baseline for the weighted comparison: probe in decreasing
    /// bandwidth-weight order.
    WeightOrdered,
    /// Algorithm 1 with scores divided by bandwidth weight.
    InformedWeighted,
}

/// One simulated attack's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeanonOutcome {
    /// Relays probed before both entry and middle were identified.
    pub probes: usize,
    /// Size of the probe universe (relays that could have been tested).
    pub universe: usize,
    /// Relays implicitly ruled out before any probing (Fig. 13's
    /// numerator).
    pub ruled_out_implicitly: usize,
    /// The victim circuit's end-to-end RTT (ms).
    pub re2e_ms: f64,
}

impl DeanonOutcome {
    /// Fraction of the universe probed (Fig. 12's x-axis).
    pub fn fraction_probed(&self) -> f64 {
        self.probes as f64 / self.universe as f64
    }

    /// Fraction implicitly ruled out (Fig. 13's y-axis).
    pub fn fraction_ruled_out(&self) -> f64 {
        self.ruled_out_implicitly as f64 / self.universe as f64
    }
}

/// A victim circuit instance.
#[derive(Debug, Clone, Copy)]
struct Victim {
    entry: NodeId,
    middle: NodeId,
    exit: NodeId,
    /// Attacker (destination) ↔ exit RTT (ms).
    r_ms: f64,
    re2e_ms: f64,
}

/// The deanonymization simulator over one RTT matrix.
pub struct DeanonSimulator<'a> {
    matrix: &'a RttMatrix,
    /// Bandwidth weights per node (all 1.0 = "traditional Tor").
    weights: HashMap<NodeId, f64>,
    /// µ: mean RTT across the dataset (Algorithm 1).
    mean_rtt_ms: f64,
}

impl<'a> DeanonSimulator<'a> {
    /// Builds a simulator with uniform weights.
    ///
    /// # Panics
    /// Panics if the matrix is incomplete (the attacker is assumed to
    /// hold full all-pairs data) or has fewer than 5 nodes.
    pub fn new(matrix: &'a RttMatrix) -> DeanonSimulator<'a> {
        assert!(matrix.is_complete(), "deanonymization needs all pairs");
        assert!(matrix.len() >= 5, "too few relays to form circuits");
        let weights = matrix.nodes().iter().map(|&n| (n, 1.0)).collect();
        DeanonSimulator {
            matrix,
            weights,
            mean_rtt_ms: matrix.mean_rtt_ms().expect("complete matrix"),
        }
    }

    /// Sets bandwidth weights (for the §5.1.1 weighted evaluation).
    pub fn with_weights(mut self, weights: HashMap<NodeId, f64>) -> DeanonSimulator<'a> {
        for n in self.matrix.nodes() {
            assert!(weights.contains_key(n), "missing weight for {n:?}");
        }
        self.weights = weights;
        self
    }

    fn rtt(&self, a: NodeId, b: NodeId) -> f64 {
        self.matrix.get(a, b).expect("complete matrix")
    }

    /// Samples a victim circuit. The source is a uniformly random node
    /// (§5.1.2); entry/middle/exit are distinct relays, selected
    /// uniformly or by weight; the destination's RTT to the exit is
    /// modelled as the exit's RTT to one more random node (the attacker
    /// sits somewhere network-like relative to the exit).
    fn sample_victim<R: Rng + ?Sized>(&self, weighted: bool, rng: &mut R) -> Victim {
        let nodes = self.matrix.nodes();
        let pick = |rng: &mut R, exclude: &[NodeId]| -> NodeId {
            loop {
                let cand = if weighted {
                    let total: f64 = nodes.iter().map(|n| self.weights[n]).sum();
                    let mut t = rng.gen_range(0.0..total);
                    let mut chosen = nodes[nodes.len() - 1];
                    for &n in nodes {
                        t -= self.weights[&n];
                        if t <= 0.0 {
                            chosen = n;
                            break;
                        }
                    }
                    chosen
                } else {
                    nodes[rng.gen_range(0..nodes.len())]
                };
                if !exclude.contains(&cand) {
                    return cand;
                }
            }
        };
        let entry = pick(rng, &[]);
        let middle = pick(rng, &[entry]);
        let exit = pick(rng, &[entry, middle]);
        let source = nodes[rng.gen_range(0..nodes.len())];
        let dest_proxy = pick(rng, &[exit]);
        let r_ms = self.rtt(exit, dest_proxy);
        let re2e_ms =
            self.rtt(source, entry) + self.rtt(entry, middle) + self.rtt(middle, exit) + r_ms;
        let _ = source; // the attacker never learns the source
        Victim {
            entry,
            middle,
            exit,
            r_ms,
            re2e_ms,
        }
    }

    /// Runs one simulated attack with `strategy`.
    pub fn run_once<R: Rng + ?Sized>(&self, strategy: Strategy, rng: &mut R) -> DeanonOutcome {
        let weighted_selection = matches!(
            strategy,
            Strategy::WeightOrdered | Strategy::InformedWeighted
        );
        let victim = self.sample_victim(weighted_selection, rng);
        self.attack(strategy, victim, rng)
    }

    /// Runs one attack against a victim whose end-to-end RTT has been
    /// artificially inflated by `pad_ms` — the §5.1.3 latency-padding
    /// defense. The attacker only ever sees the padded RTT, so its
    /// budget-based filtering weakens.
    pub fn run_once_padded<R: Rng + ?Sized>(
        &self,
        strategy: Strategy,
        pad_ms: f64,
        rng: &mut R,
    ) -> DeanonOutcome {
        assert!(pad_ms >= 0.0);
        let weighted_selection = matches!(
            strategy,
            Strategy::WeightOrdered | Strategy::InformedWeighted
        );
        let mut victim = self.sample_victim(weighted_selection, rng);
        victim.re2e_ms += pad_ms;
        self.attack(strategy, victim, rng)
    }

    /// Runs `runs` attacks and returns their outcomes.
    pub fn run_many<R: Rng + ?Sized>(
        &self,
        strategy: Strategy,
        runs: usize,
        rng: &mut R,
    ) -> Vec<DeanonOutcome> {
        (0..runs).map(|_| self.run_once(strategy, rng)).collect()
    }

    fn attack<R: Rng + ?Sized>(
        &self,
        strategy: Strategy,
        victim: Victim,
        rng: &mut R,
    ) -> DeanonOutcome {
        // Probe universe: every relay except the (known) exit.
        let universe: Vec<NodeId> = self
            .matrix
            .nodes()
            .iter()
            .copied()
            .filter(|&n| n != victim.exit)
            .collect();
        let universe_size = universe.len();
        let budget = victim.re2e_ms;
        let x = victim.exit;
        let r = victim.r_ms;

        let rtt_aware = !matches!(strategy, Strategy::RttUnaware | Strategy::WeightOrdered);

        // A node c is a viable middle if some entry e fits the budget:
        //   R(e,c) + R(c,x) + r ≤ Re2e,
        // and a viable entry if some middle m fits:
        //   R(c,m) + R(m,x) + r ≤ Re2e.
        let viable_middle = |c: NodeId, pool: &[NodeId]| {
            pool.iter()
                .any(|&e| e != c && self.rtt(e, c) + self.rtt(c, x) + r <= budget)
        };
        let viable_entry = |c: NodeId, pool: &[NodeId]| {
            pool.iter()
                .any(|&m| m != c && self.rtt(c, m) + self.rtt(m, x) + r <= budget)
        };

        let mut candidates: Vec<NodeId> = if rtt_aware {
            universe
                .iter()
                .copied()
                .filter(|&c| viable_middle(c, &universe) || viable_entry(c, &universe))
                .collect()
        } else {
            universe.clone()
        };
        let ruled_out_implicitly = universe_size - candidates.len();
        // The true circuit members always survive the filter (their own
        // circuit fits the budget by construction).
        debug_assert!(candidates.contains(&victim.entry));
        debug_assert!(candidates.contains(&victim.middle));

        // Probe ordering state.
        candidates.shuffle(rng);
        if matches!(strategy, Strategy::WeightOrdered) {
            candidates.sort_by(|a, b| {
                self.weights[b]
                    .partial_cmp(&self.weights[a])
                    .expect("finite weights")
            });
        }

        let mut probes = 0usize;
        let mut found_entry = false;
        let mut found_middle = false;
        // Position knowledge from the §5.1.1 inference rules.
        let mut known_entry: Option<NodeId> = None;
        let mut known_middle: Option<NodeId> = None;

        while !(found_entry && found_middle) {
            // Pick the next node to probe.
            let next = match strategy {
                Strategy::Informed | Strategy::InformedWeighted => self.pick_informed(
                    &candidates,
                    x,
                    r,
                    budget,
                    strategy,
                    known_entry,
                    known_middle,
                ),
                _ => 0,
            };
            if candidates.is_empty() {
                // Should not happen: the true members are never pruned.
                break;
            }
            let c = candidates.remove(next.min(candidates.len() - 1));
            probes += 1;

            let on_circuit = c == victim.entry || c == victim.middle;
            if on_circuit {
                if c == victim.entry {
                    found_entry = true;
                } else {
                    found_middle = true;
                }
                if rtt_aware {
                    // Infer the position of c where possible.
                    let pool: Vec<NodeId> = candidates.clone();
                    let can_be_middle = viable_middle(c, &pool)
                        || known_entry
                            .map(|e| self.rtt(e, c) + self.rtt(c, x) + r <= budget)
                            .unwrap_or(false);
                    let can_be_entry = viable_entry(c, &pool)
                        || known_middle
                            .map(|m| self.rtt(c, m) + self.rtt(m, x) + r <= budget)
                            .unwrap_or(false);
                    if can_be_middle && !can_be_entry {
                        known_middle = Some(c);
                    } else if can_be_entry && !can_be_middle {
                        known_entry = Some(c);
                    } else if c == victim.entry {
                        // The attacker eventually disambiguates by
                        // probing behaviour; model as knowledge once
                        // both rules pass (conservative).
                        known_entry = Some(c);
                    } else {
                        known_middle = Some(c);
                    }
                    // Prune with the position-specific rules.
                    if let Some(e) = known_entry {
                        candidates.retain(|&m| {
                            self.rtt(e, m) + self.rtt(m, x) + r <= budget
                                || (found_entry && found_middle)
                        });
                    }
                    if let Some(m) = known_middle {
                        candidates.retain(|&e| {
                            self.rtt(e, m) + self.rtt(m, x) + r <= budget
                                || (found_entry && found_middle)
                        });
                    }
                }
            }
        }

        DeanonOutcome {
            probes,
            universe: universe_size,
            ruled_out_implicitly,
            re2e_ms: victim.re2e_ms,
        }
    }

    /// Algorithm 1's scoring: index of the candidate with the lowest
    /// `min_c |Re2e − (R(c) + r + µ)|`, where the circuits `c` place the
    /// candidate as entry or middle with every viable partner. Once a
    /// circuit member's position is known, only circuits through it are
    /// enumerated — the found hop pins one end of R(c).
    #[allow(clippy::too_many_arguments)]
    fn pick_informed(
        &self,
        candidates: &[NodeId],
        x: NodeId,
        r: f64,
        budget: f64,
        strategy: Strategy,
        known_entry: Option<NodeId>,
        known_middle: Option<NodeId>,
    ) -> usize {
        let mu = self.mean_rtt_ms;
        let mut best_idx = 0;
        let mut best_score = f64::INFINITY;
        for (i, &c) in candidates.iter().enumerate() {
            let mut node_best = f64::INFINITY;
            let mut consider = |circuit_rtt: f64| {
                if circuit_rtt + r <= budget {
                    node_best = node_best.min((budget - (circuit_rtt + r + mu)).abs());
                }
            };
            match (known_entry, known_middle) {
                (Some(e), _) => {
                    // c must be the middle of (e, c, x).
                    consider(self.rtt(e, c) + self.rtt(c, x));
                }
                (_, Some(m)) => {
                    // c must be the entry of (c, m, x).
                    consider(self.rtt(c, m) + self.rtt(m, x));
                }
                (None, None) => {
                    for &p in candidates {
                        if p == c {
                            continue;
                        }
                        // c as entry, p as middle.
                        consider(self.rtt(c, p) + self.rtt(p, x));
                        // c as middle, p as entry.
                        consider(self.rtt(p, c) + self.rtt(c, x));
                    }
                }
            }
            let score = if matches!(strategy, Strategy::InformedWeighted) {
                node_best / self.weights[&c]
            } else {
                node_best
            };
            if score < best_score {
                best_score = score;
                best_idx = i;
            }
        }
        best_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A synthetic complete matrix with geographic-ish structure.
    fn matrix(n: u32, seed: u64) -> RttMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        // Place nodes on a line; RTT = |distance| + noise. Correlated
        // structure matters: it's what the informed strategy exploits.
        let pos: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..300.0)).collect();
        let mut m = RttMatrix::new(nodes.clone());
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let d = (pos[i] - pos[j]).abs() + rng.gen_range(5.0..20.0);
                m.set(nodes[i], nodes[j], d);
            }
        }
        m
    }

    #[test]
    fn all_strategies_always_find_the_circuit() {
        let m = matrix(30, 1);
        let sim = DeanonSimulator::new(&m);
        let mut rng = SmallRng::seed_from_u64(2);
        for strategy in [
            Strategy::RttUnaware,
            Strategy::IgnoreTooLarge,
            Strategy::Informed,
        ] {
            for _ in 0..50 {
                let o = sim.run_once(strategy, &mut rng);
                assert!(o.probes >= 2, "needs at least two hits");
                assert!(o.probes <= o.universe, "{strategy:?} overran");
            }
        }
    }

    #[test]
    fn unaware_median_matches_order_statistics() {
        // The max of two uniform positions among n has median ≈ n·√½.
        let m = matrix(40, 3);
        let sim = DeanonSimulator::new(&m);
        let mut rng = SmallRng::seed_from_u64(4);
        let outcomes = sim.run_many(Strategy::RttUnaware, 600, &mut rng);
        let fracs: Vec<f64> = outcomes.iter().map(|o| o.fraction_probed()).collect();
        let med = stats::median(&fracs).unwrap();
        assert!((med - 0.707).abs() < 0.08, "median {med}");
    }

    #[test]
    fn rtt_knowledge_reduces_probes() {
        let m = matrix(40, 5);
        let sim = DeanonSimulator::new(&m);
        let mut rng = SmallRng::seed_from_u64(6);
        let runs = 400;
        let med = |s: Strategy, rng: &mut SmallRng| {
            let o = sim.run_many(s, runs, rng);
            let f: Vec<f64> = o.iter().map(|x| x.fraction_probed()).collect();
            stats::median(&f).unwrap()
        };
        let unaware = med(Strategy::RttUnaware, &mut rng);
        let ignore = med(Strategy::IgnoreTooLarge, &mut rng);
        let informed = med(Strategy::Informed, &mut rng);
        assert!(
            ignore < unaware,
            "ignore-too-large {ignore} not better than unaware {unaware}"
        );
        assert!(
            informed < ignore,
            "informed {informed} not better than ignore {ignore}"
        );
        // Fig. 12's overall shape: a meaningful speedup end to end.
        assert!(unaware / informed > 1.2, "speedup too small");
    }

    #[test]
    fn low_rtt_circuits_rule_out_more() {
        let m = matrix(40, 7);
        let sim = DeanonSimulator::new(&m);
        let mut rng = SmallRng::seed_from_u64(8);
        let outcomes = sim.run_many(Strategy::IgnoreTooLarge, 400, &mut rng);
        // Correlation between Re2e and fraction ruled out must be
        // negative (Fig. 13).
        let re2e: Vec<f64> = outcomes.iter().map(|o| o.re2e_ms).collect();
        let ruled: Vec<f64> = outcomes.iter().map(|o| o.fraction_ruled_out()).collect();
        let rho = stats::spearman(&re2e, &ruled).unwrap();
        assert!(rho < -0.3, "expected negative correlation, got {rho}");
    }

    #[test]
    fn weighted_informed_beats_weight_ordered() {
        let m = matrix(40, 9);
        let mut rng = SmallRng::seed_from_u64(10);
        // Moderately skewed weights (~1–10×, like consensus weights
        // within a relay class). With extreme skew, weight order alone
        // pins the circuit and RTT data can add nothing.
        let weights: HashMap<NodeId, f64> = m
            .nodes()
            .iter()
            .map(|&n| (n, 1.0 / rng.gen_range(0.1..1.0f64)))
            .collect();
        let sim = DeanonSimulator::new(&m).with_weights(weights);
        let med = |s: Strategy, rng: &mut SmallRng| {
            let o = sim.run_many(s, 300, rng);
            let f: Vec<f64> = o.iter().map(|x| x.fraction_probed()).collect();
            stats::median(&f).unwrap()
        };
        let baseline = med(Strategy::WeightOrdered, &mut rng);
        let informed = med(Strategy::InformedWeighted, &mut rng);
        assert!(
            informed < baseline,
            "weighted informed {informed} vs baseline {baseline}"
        );
    }

    #[test]
    #[should_panic]
    fn incomplete_matrix_rejected() {
        let m = RttMatrix::new((0..10).map(NodeId).collect());
        let _ = DeanonSimulator::new(&m);
    }
}
