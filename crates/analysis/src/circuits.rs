//! Longer circuits (§5.2.2, Figs. 16–17).
//!
//! For each circuit length ℓ ∈ 3..=10 the paper samples 10,000 random
//! ℓ-relay circuits from its 50-node matrix, bins their internal RTTs
//! into 50 ms buckets, and scales sampled counts up to the full
//! population `C(50, ℓ)` (Fig. 16). Fig. 17 then asks how *diverse* the
//! circuits in each (length, RTT-bin) class are: the median, over nodes,
//! of the probability that a node appears on a circuit in that class.

use netsim::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use stats::Histogram;
use ting::RttMatrix;

/// Per-length binned series.
#[derive(Debug, Clone)]
pub struct LengthBinSeries {
    pub length: usize,
    /// Scaled estimate of circuits per RTT bin (Fig. 16's y-axis).
    pub scaled_counts: Vec<f64>,
    /// Median node-selection probability per bin (Fig. 17's y-axis);
    /// `None` for empty bins.
    pub median_node_prob: Vec<Option<f64>>,
    /// Bin centers in seconds.
    pub bin_centers_s: Vec<f64>,
}

/// The §5.2.2 analysis.
#[derive(Debug, Clone)]
pub struct CircuitLengthAnalysis {
    pub series: Vec<LengthBinSeries>,
    pub samples_per_length: usize,
}

/// `C(n, k)` as f64 (the paper's scaling factor).
pub fn choose(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

impl CircuitLengthAnalysis {
    /// Runs the analysis over `matrix` for `lengths`, sampling
    /// `samples_per_length` circuits each. Bins span `[0, max_s)`
    /// seconds at 50 ms per bin, as in the paper.
    pub fn run<R: Rng + ?Sized>(
        matrix: &RttMatrix,
        lengths: impl IntoIterator<Item = usize>,
        samples_per_length: usize,
        max_s: f64,
        rng: &mut R,
    ) -> CircuitLengthAnalysis {
        assert!(matrix.is_complete(), "analysis needs all pairs");
        let nodes: Vec<NodeId> = matrix.nodes().to_vec();
        let n = nodes.len();
        let mut series = Vec::new();

        for length in lengths {
            assert!(length >= 2 && length <= n, "bad length {length}");
            let layout = Histogram::with_bin_width(0.0, max_s, 0.05);
            let bins = layout.bins();
            let mut counts = vec![0u64; bins];
            // node_hits[bin][node index] = sampled circuits in this bin
            // containing the node.
            let mut node_hits = vec![vec![0u64; n]; bins];

            let mut pick_buf: Vec<usize> = (0..n).collect();
            for _ in 0..samples_per_length {
                // Random distinct relay sequence of `length` nodes.
                pick_buf.shuffle(rng);
                let circuit = &pick_buf[..length];
                let mut rtt_ms = 0.0;
                for w in circuit.windows(2) {
                    rtt_ms += matrix.get(nodes[w[0]], nodes[w[1]]).expect("complete");
                }
                let bin = layout.bin_of(rtt_ms / 1000.0);
                counts[bin] += 1;
                for &idx in circuit {
                    node_hits[bin][idx] += 1;
                }
            }

            // Scale sampled counts to the C(n, ℓ) population (Fig. 16).
            let population = choose(n, length);
            let scale = population / samples_per_length as f64;
            let scaled_counts: Vec<f64> = counts.iter().map(|&c| c as f64 * scale).collect();

            // Fig. 17: median over nodes of P(node on circuit | bin).
            let median_node_prob: Vec<Option<f64>> = (0..bins)
                .map(|b| {
                    if counts[b] == 0 {
                        return None;
                    }
                    let probs: Vec<f64> = (0..n)
                        .map(|i| node_hits[b][i] as f64 / counts[b] as f64)
                        .collect();
                    stats::median(&probs)
                })
                .collect();

            let bin_centers_s = (0..bins).map(|b| layout.bin_center(b)).collect();
            series.push(LengthBinSeries {
                length,
                scaled_counts,
                median_node_prob,
                bin_centers_s,
            });
        }

        CircuitLengthAnalysis {
            series,
            samples_per_length,
        }
    }

    /// Total scaled circuits with RTT inside `[lo_s, hi_s)` for one
    /// length — the paper's "order of magnitude more 4-hop circuits in
    /// 200–300 ms" comparison.
    pub fn circuits_in_range(&self, length: usize, lo_s: f64, hi_s: f64) -> f64 {
        let Some(s) = self.series.iter().find(|s| s.length == length) else {
            return 0.0;
        };
        s.bin_centers_s
            .iter()
            .zip(&s.scaled_counts)
            .filter(|(&c, _)| c >= lo_s && c < hi_s)
            .map(|(_, &v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_matrix(n: u32, seed: u64) -> RttMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut m = RttMatrix::new(nodes.clone());
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                m.set(nodes[i], nodes[j], rng.gen_range(10.0..300.0));
            }
        }
        m
    }

    #[test]
    fn choose_matches_known_values() {
        assert_eq!(choose(50, 3), 19_600.0);
        assert_eq!(choose(5, 5), 1.0);
        assert_eq!(choose(5, 6), 0.0);
        assert!((choose(50, 10) - 1.0272278170e10).abs() / choose(50, 10) < 1e-6);
    }

    #[test]
    fn scaled_counts_sum_to_population() {
        let m = random_matrix(20, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let a = CircuitLengthAnalysis::run(&m, [3, 5], 2000, 3.0, &mut rng);
        for s in &a.series {
            let total: f64 = s.scaled_counts.iter().sum();
            let expect = choose(20, s.length);
            assert!(
                (total - expect).abs() / expect < 1e-9,
                "length {} total {total} expect {expect}",
                s.length
            );
        }
    }

    #[test]
    fn longer_circuits_shift_right() {
        let m = random_matrix(25, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let a = CircuitLengthAnalysis::run(&m, [3, 8], 4000, 5.0, &mut rng);
        // Mean binned RTT of 8-hop circuits exceeds 3-hop.
        let mean_of = |s: &LengthBinSeries| {
            let total: f64 = s.scaled_counts.iter().sum();
            s.bin_centers_s
                .iter()
                .zip(&s.scaled_counts)
                .map(|(&c, &v)| c * v)
                .sum::<f64>()
                / total
        };
        let m3 = mean_of(&a.series[0]);
        let m8 = mean_of(&a.series[1]);
        assert!(m8 > m3 * 2.0, "3-hop {m3}s vs 8-hop {m8}s");
    }

    #[test]
    fn more_longer_circuits_at_same_rtt() {
        // Fig. 16's key claim: in a mid-range RTT band there are orders
        // of magnitude more longer circuits (population scaling wins).
        let m = random_matrix(30, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let a = CircuitLengthAnalysis::run(&m, [3, 4], 20_000, 5.0, &mut rng);
        // Pick the band around the 3-hop median RTT.
        let s3 = &a.series[0];
        let peak_bin = s3
            .scaled_counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let lo = s3.bin_centers_s[peak_bin] - 0.075;
        let hi = s3.bin_centers_s[peak_bin] + 0.075;
        let c3 = a.circuits_in_range(3, lo, hi);
        let c4 = a.circuits_in_range(4, lo, hi);
        assert!(c4 > c3, "4-hop {c4} not more than 3-hop {c3} in band");
    }

    #[test]
    fn node_probabilities_bounded_and_average_to_l_over_n() {
        let m = random_matrix(20, 7);
        let mut rng = SmallRng::seed_from_u64(8);
        let a = CircuitLengthAnalysis::run(&m, [5], 5000, 5.0, &mut rng);
        let s = &a.series[0];
        for p in s.median_node_prob.iter().flatten() {
            assert!((0.0..=1.0).contains(p));
        }
        // Across all circuits (ignore binning): every circuit has 5 of
        // 20 nodes, so the *mean* probability is 0.25; medians per busy
        // bin should be in that neighbourhood.
        let busiest = s
            .scaled_counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let p = s.median_node_prob[busiest].unwrap();
        assert!(p > 0.05 && p < 0.5, "median prob {p}");
    }

    #[test]
    #[should_panic]
    fn length_beyond_population_rejected() {
        let m = random_matrix(5, 9);
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = CircuitLengthAnalysis::run(&m, [6], 10, 1.0, &mut rng);
    }
}
