//! Latency-aware path selection — the algorithm the paper leaves to
//! future work.
//!
//! §5.2.2 closes: "there is potential for a larger design space than
//! Tor's three-hop default: longer hops need not induce greater
//! latency … though we leave specific algorithms to future work", and
//! §6 suggests Ting data "could also be used to improve the latency of
//! Tor while maintaining, and even improving, the level of anonymity it
//! provides, by greatly increasing the set of acceptable circuits for a
//! given RTT".
//!
//! [`PathSelector`] is one such algorithm. Given an all-pairs matrix
//! and an RTT budget, it samples uniformly from the set of *all*
//! circuits (any length in a configured range) whose predicted internal
//! RTT fits the budget, using rejection sampling with per-length
//! proposal weights proportional to each length's estimated acceptance
//! mass. Selection entropy — the paper's Fig. 17 concern — can then be
//! compared against budget-constrained 3-hop-only selection.

use netsim::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use ting::RttMatrix;

/// Configuration for latency-aware selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSelectorConfig {
    /// Inclusive circuit-length range to draw from.
    pub min_len: usize,
    pub max_len: usize,
    /// Internal-RTT budget (ms): sum of hop RTTs along the circuit.
    pub budget_ms: f64,
    /// Pilot samples per length used to estimate acceptance rates.
    pub pilot_samples: usize,
}

impl Default for PathSelectorConfig {
    fn default() -> Self {
        PathSelectorConfig {
            min_len: 3,
            max_len: 6,
            budget_ms: 300.0,
            pilot_samples: 2000,
        }
    }
}

/// Summary of what a selector can offer at its budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionProfile {
    /// Estimated number of distinct acceptable circuits per length.
    pub circuits_per_length: HashMap<usize, f64>,
    /// Shannon entropy (bits) of per-node selection probability, i.e.
    /// how spread-out relay usage is under this policy.
    pub node_entropy_bits: f64,
    /// The maximum possible entropy (uniform over all relays).
    pub max_entropy_bits: f64,
}

impl SelectionProfile {
    /// Normalized entropy in `[0, 1]`.
    pub fn normalized_entropy(&self) -> f64 {
        if self.max_entropy_bits == 0.0 {
            return 0.0;
        }
        self.node_entropy_bits / self.max_entropy_bits
    }

    /// Estimated total acceptable circuits across lengths.
    pub fn total_circuits(&self) -> f64 {
        self.circuits_per_length.values().sum()
    }
}

/// The latency-aware selector.
pub struct PathSelector<'a> {
    matrix: &'a RttMatrix,
    config: PathSelectorConfig,
    /// Per-length acceptance rate estimated from pilot sampling.
    acceptance: HashMap<usize, f64>,
}

impl<'a> PathSelector<'a> {
    /// Builds a selector, running the pilot estimation.
    ///
    /// # Panics
    /// Panics if the matrix is incomplete or the length range invalid.
    pub fn new<R: Rng + ?Sized>(
        matrix: &'a RttMatrix,
        config: PathSelectorConfig,
        rng: &mut R,
    ) -> PathSelector<'a> {
        assert!(matrix.is_complete(), "path selection needs all pairs");
        assert!(config.min_len >= 2 && config.min_len <= config.max_len);
        assert!(config.max_len <= matrix.len());
        let mut acceptance = HashMap::new();
        for len in config.min_len..=config.max_len {
            let mut hits = 0usize;
            for _ in 0..config.pilot_samples {
                let c = random_circuit(matrix, len, rng);
                if circuit_rtt_ms(matrix, &c) <= config.budget_ms {
                    hits += 1;
                }
            }
            acceptance.insert(len, hits as f64 / config.pilot_samples as f64);
        }
        PathSelector {
            matrix,
            config,
            acceptance,
        }
    }

    /// The estimated acceptance rate for one length.
    pub fn acceptance_rate(&self, len: usize) -> f64 {
        self.acceptance.get(&len).copied().unwrap_or(0.0)
    }

    /// Draws one circuit uniformly-ish from the acceptable set: pick a
    /// length with probability ∝ (acceptance × population), then
    /// rejection-sample circuits of that length until one fits.
    /// Returns `None` if no length has any acceptance mass.
    pub fn sample_circuit<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Vec<NodeId>> {
        let n = self.matrix.len();
        let masses: Vec<(usize, f64)> = (self.config.min_len..=self.config.max_len)
            .map(|len| {
                // Ordered-circuit population: n! / (n-len)!.
                let mut pop = 1.0f64;
                for i in 0..len {
                    pop *= (n - i) as f64;
                }
                (len, self.acceptance[&len] * pop)
            })
            .collect();
        let total: f64 = masses.iter().map(|(_, m)| m).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = self.config.min_len;
        for (len, m) in &masses {
            target -= m;
            if target <= 0.0 {
                chosen = *len;
                break;
            }
        }
        // Rejection-sample within the chosen length.
        for _ in 0..100_000 {
            let c = random_circuit(self.matrix, chosen, rng);
            if circuit_rtt_ms(self.matrix, &c) <= self.config.budget_ms {
                return Some(c);
            }
        }
        None
    }

    /// Profiles this policy: circuits available per length and the
    /// node-usage entropy over `samples` drawn circuits.
    pub fn profile<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> SelectionProfile {
        let n = self.matrix.len();
        let mut circuits_per_length = HashMap::new();
        for len in self.config.min_len..=self.config.max_len {
            let mut pop = 1.0f64;
            for i in 0..len {
                pop *= (n - i) as f64;
            }
            circuits_per_length.insert(len, self.acceptance[&len] * pop);
        }
        // Node-usage entropy.
        let mut usage: HashMap<NodeId, u64> = HashMap::new();
        let mut drawn = 0u64;
        for _ in 0..samples {
            if let Some(c) = self.sample_circuit(rng) {
                for node in c {
                    *usage.entry(node).or_insert(0) += 1;
                }
                drawn += 1;
            }
        }
        let total_usage: u64 = usage.values().sum();
        let node_entropy_bits = if total_usage == 0 {
            0.0
        } else {
            usage
                .values()
                .map(|&u| {
                    let p = u as f64 / total_usage as f64;
                    -p * p.log2()
                })
                .sum()
        };
        let _ = drawn;
        SelectionProfile {
            circuits_per_length,
            node_entropy_bits,
            max_entropy_bits: (n as f64).log2(),
        }
    }
}

/// A uniformly random ordered circuit of `len` distinct relays.
fn random_circuit<R: Rng + ?Sized>(matrix: &RttMatrix, len: usize, rng: &mut R) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = matrix.nodes().to_vec();
    // NB: `partial_shuffle` shuffles into the slice's *tail*; the first
    // returned sub-slice is the shuffled part.
    let (shuffled, _) = nodes.partial_shuffle(rng, len);
    shuffled.to_vec()
}

/// Sum of consecutive hop RTTs.
pub fn circuit_rtt_ms(matrix: &RttMatrix, circuit: &[NodeId]) -> f64 {
    circuit
        .windows(2)
        .map(|w| matrix.get(w[0], w[1]).expect("complete matrix"))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn matrix(n: u32, seed: u64) -> RttMatrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut m = RttMatrix::new(nodes.clone());
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                m.set(nodes[i], nodes[j], rng.gen_range(20.0..200.0));
            }
        }
        m
    }

    #[test]
    fn sampled_circuits_respect_budget_and_length() {
        let m = matrix(25, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = PathSelectorConfig {
            min_len: 3,
            max_len: 6,
            budget_ms: 250.0,
            pilot_samples: 500,
        };
        let sel = PathSelector::new(&m, cfg, &mut rng);
        for _ in 0..50 {
            let c = sel.sample_circuit(&mut rng).expect("circuit");
            assert!(c.len() >= 3 && c.len() <= 6);
            assert!(circuit_rtt_ms(&m, &c) <= 250.0);
            // Distinct relays.
            let set: std::collections::HashSet<_> = c.iter().collect();
            assert_eq!(set.len(), c.len());
        }
    }

    #[test]
    fn wider_length_range_offers_more_circuits() {
        let m = matrix(25, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let narrow = PathSelector::new(
            &m,
            PathSelectorConfig {
                min_len: 3,
                max_len: 3,
                budget_ms: 300.0,
                pilot_samples: 2000,
            },
            &mut rng,
        )
        .profile(200, &mut rng);
        let wide = PathSelector::new(
            &m,
            PathSelectorConfig {
                min_len: 3,
                max_len: 6,
                budget_ms: 300.0,
                pilot_samples: 2000,
            },
            &mut rng,
        )
        .profile(200, &mut rng);
        // §6's claim: longer lengths greatly increase the acceptable set.
        assert!(
            wide.total_circuits() > narrow.total_circuits() * 2.0,
            "wide {} vs narrow {}",
            wide.total_circuits(),
            narrow.total_circuits()
        );
    }

    #[test]
    fn entropy_reasonable_and_bounded() {
        let m = matrix(20, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let sel = PathSelector::new(&m, PathSelectorConfig::default(), &mut rng);
        let p = sel.profile(300, &mut rng);
        assert!(p.node_entropy_bits > 0.0);
        assert!(p.node_entropy_bits <= p.max_entropy_bits + 1e-9);
        assert!(p.normalized_entropy() > 0.5, "selection too concentrated");
    }

    #[test]
    fn acceptance_rates_decrease_with_length() {
        // With a fixed budget, longer circuits fit less often.
        let m = matrix(25, 7);
        let mut rng = SmallRng::seed_from_u64(8);
        let sel = PathSelector::new(
            &m,
            PathSelectorConfig {
                min_len: 3,
                max_len: 7,
                budget_ms: 350.0,
                pilot_samples: 3000,
            },
            &mut rng,
        );
        for len in 3..7 {
            assert!(
                sel.acceptance_rate(len) >= sel.acceptance_rate(len + 1),
                "len {len}: {} < {}",
                sel.acceptance_rate(len),
                sel.acceptance_rate(len + 1)
            );
        }
    }

    #[test]
    fn impossible_budget_returns_none() {
        let m = matrix(15, 9);
        let mut rng = SmallRng::seed_from_u64(10);
        let sel = PathSelector::new(
            &m,
            PathSelectorConfig {
                min_len: 3,
                max_len: 4,
                budget_ms: 1.0, // nothing fits
                pilot_samples: 300,
            },
            &mut rng,
        );
        assert!(sel.sample_circuit(&mut rng).is_none());
    }

    #[test]
    fn circuit_rtt_sums_hops() {
        let mut m = RttMatrix::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        m.set(NodeId(0), NodeId(1), 10.0);
        m.set(NodeId(1), NodeId(2), 20.0);
        m.set(NodeId(0), NodeId(2), 99.0);
        assert_eq!(circuit_rtt_ms(&m, &[NodeId(0), NodeId(1), NodeId(2)]), 30.0);
    }
}
