//! Property tests for the §5 application algorithms.

use analysis::{
    CircuitLengthAnalysis, DeanonSimulator, PathSelector, PathSelectorConfig, Strategy, TivReport,
};
use netsim::NodeId;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ting::RttMatrix;

/// A random complete matrix with line-metric structure plus noise.
fn matrix(n: usize, seed: u64) -> RttMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let pos: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..250.0)).collect();
    let mut m = RttMatrix::new(nodes.clone());
    for i in 0..n {
        for j in (i + 1)..n {
            m.set(
                nodes[i],
                nodes[j],
                (pos[i] - pos[j]).abs() + rng.gen_range(2.0..30.0),
            );
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Deanonymization terminates, stays in bounds, and implicit
    /// rule-outs never exceed the universe.
    #[test]
    fn deanon_outcomes_in_bounds(seed in 0u64..1000, n in 8usize..40) {
        let m = matrix(n, seed);
        let sim = DeanonSimulator::new(&m);
        let mut rng = SmallRng::seed_from_u64(seed ^ 7);
        for strategy in [Strategy::RttUnaware, Strategy::IgnoreTooLarge, Strategy::Informed] {
            let o = sim.run_once(strategy, &mut rng);
            prop_assert!(o.probes >= 2);
            prop_assert!(o.probes <= o.universe);
            prop_assert!(o.ruled_out_implicitly + o.probes <= o.universe + 2);
            prop_assert!(o.re2e_ms > 0.0);
            prop_assert!((0.0..=1.0).contains(&o.fraction_probed()));
            prop_assert!((0.0..=1.0).contains(&o.fraction_ruled_out()));
        }
    }

    /// Padding can only weaken (or not change) the budget filter: the
    /// padded attack never implicitly rules out *more* than the
    /// unpadded one on the same victim distribution (statistically:
    /// mean over several runs).
    #[test]
    fn padding_weakens_filtering(seed in 0u64..500) {
        let m = matrix(24, seed);
        let sim = DeanonSimulator::new(&m);
        let runs = 40;
        let mut rng_a = SmallRng::seed_from_u64(seed ^ 1);
        let mut rng_b = SmallRng::seed_from_u64(seed ^ 1);
        let base: f64 = (0..runs)
            .map(|_| sim.run_once_padded(Strategy::IgnoreTooLarge, 0.0, &mut rng_a).fraction_ruled_out())
            .sum::<f64>() / runs as f64;
        let padded: f64 = (0..runs)
            .map(|_| sim.run_once_padded(Strategy::IgnoreTooLarge, 300.0, &mut rng_b).fraction_ruled_out())
            .sum::<f64>() / runs as f64;
        prop_assert!(padded <= base + 0.05, "padded {padded} rules out more than {base}");
    }

    /// TIV findings are internally consistent and the best detour is
    /// really the best over all relays.
    #[test]
    fn tiv_findings_consistent(seed in 0u64..1000, n in 4usize..20) {
        let m = matrix(n, seed);
        let report = TivReport::analyze(&m);
        prop_assert_eq!(report.findings.len(), n * (n - 1) / 2);
        prop_assert!((0.0..=1.0).contains(&report.violation_fraction()));
        for f in &report.findings {
            // Verify optimality by brute force.
            for &r in m.nodes() {
                if r == f.src || r == f.dst {
                    continue;
                }
                let detour = m.get(f.src, r).unwrap() + m.get(r, f.dst).unwrap();
                prop_assert!(detour >= f.best_detour_ms - 1e-9);
            }
            if f.is_violation() {
                prop_assert!(f.savings_percent() > 0.0 && f.savings_percent() < 100.0);
            } else {
                prop_assert_eq!(f.savings_percent(), 0.0);
            }
        }
    }

    /// Circuit-length analysis conserves mass and probabilities.
    #[test]
    fn circuit_analysis_conserves_mass(seed in 0u64..500, n in 10usize..25) {
        let m = matrix(n, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 3);
        let a = CircuitLengthAnalysis::run(&m, [3, 4], 500, 4.0, &mut rng);
        for s in &a.series {
            let total: f64 = s.scaled_counts.iter().sum();
            let pop = analysis::circuits::choose(n, s.length);
            prop_assert!((total - pop).abs() / pop < 1e-9);
            for p in s.median_node_prob.iter().flatten() {
                prop_assert!((0.0..=1.0).contains(p));
            }
        }
    }

    /// Path selection only emits circuits that fit the budget, with
    /// distinct relays and in-range lengths.
    #[test]
    fn pathsel_respects_contract(seed in 0u64..500, budget in 100.0..500.0f64) {
        let m = matrix(18, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 5);
        let sel = PathSelector::new(
            &m,
            PathSelectorConfig { min_len: 3, max_len: 5, budget_ms: budget, pilot_samples: 300 },
            &mut rng,
        );
        for _ in 0..10 {
            if let Some(c) = sel.sample_circuit(&mut rng) {
                prop_assert!(c.len() >= 3 && c.len() <= 5);
                prop_assert!(analysis::pathsel::circuit_rtt_ms(&m, &c) <= budget + 1e-9);
                let set: std::collections::HashSet<_> = c.iter().collect();
                prop_assert_eq!(set.len(), c.len());
            }
        }
    }
}
