//! The onion-router state machine.
//!
//! A relay terminates link connections from clients and other relays,
//! maintains per-circuit crypto state, and moves cells:
//!
//! * CREATE2 → run the ntor handshake, become the newest hop;
//! * RELAY (from the client side) → strip one onion layer; if recognized,
//!   act on the relay command (EXTEND2 / BEGIN / DATA / END), otherwise
//!   forward to the next hop;
//! * RELAY (from the exit side) → add one onion layer, forward backward;
//! * DESTROY → tear down and propagate.
//!
//! **Forwarding delay.** Every cell passes through a busy-until queue
//! before processing: `F = base_proc + queueing`, where `base_proc` is
//! the symmetric-crypto floor (the "time to decrypt and encrypt packets",
//! §3.2) and queueing is a load-dependent random term ("the time the
//! packet spends enqueued … if our measurement packet arrives at a node
//! when our circuit is not first in the schedule"). Ting's estimator
//! exists precisely to cancel this `F`; §4.3 finds its per-relay minimum
//! at 0–3 ms, which is what the default [`RelayConfig`] produces.

use crate::metrics::RelayMetrics;
use netsim::{ConnId, Context, NodeId, Process, SimDuration, TrafficClass};
use onion_crypto::{server_handshake, KeyPair};
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use tor_protocol::{
    Cell, CellCommand, CircuitId, Extend2, Extended2, RelayCell, RelayCmd, RelayCrypto,
    RelayCryptoOutcome,
};

/// Timer id: the head of the processing queue is due.
const TIMER_PROC: u64 = 1;

/// Per-relay performance/load parameters.
#[derive(Debug, Clone, Copy)]
pub struct RelayConfig {
    /// Crypto + context-switch floor per cell (ms). Paper §4.3: the
    /// minimum forwarding delay "should consist only of the time to
    /// process the packet, which mostly consists of symmetric key
    /// cryptography" — 0–2 ms on PlanetLab hardware.
    pub base_proc_ms: f64,
    /// Probability a cell finds other circuits' cells scheduled ahead of
    /// it (relay utilization by background traffic).
    pub busy_prob: f64,
    /// Mean of the exponential queueing delay when busy (ms).
    pub busy_mean_ms: f64,
}

impl RelayConfig {
    /// The mean per-cell forwarding delay this config induces:
    /// the crypto floor plus the expected queueing excess
    /// (`busy_prob · busy_mean_ms`). This is the ground truth a §4.3
    /// forwarding-delay estimator should recover, so trace-analysis
    /// tests correlate their per-relay attributions against it.
    pub fn expected_forwarding_ms(&self) -> f64 {
        self.base_proc_ms + self.expected_queueing_ms()
    }

    /// The queueing part of the forwarding delay alone. An estimator
    /// that subtracts a minimum-RTT floor cancels `base_proc_ms` along
    /// with propagation (both sit in every probe, including the
    /// fastest), so what it can actually recover per relay is this
    /// excess term.
    pub fn expected_queueing_ms(&self) -> f64 {
        self.busy_prob * self.busy_mean_ms
    }
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            base_proc_ms: 0.5,
            busy_prob: 0.35,
            busy_mean_ms: 3.0,
        }
    }
}

/// Relay-level fault injection: misbehaviour of the onion router itself,
/// as opposed to the underlay faults in [`netsim::FaultPlan`].
///
/// Fault decisions come from a keyed hash over `(seed, draw counter)`
/// private to each relay — never from the simulation RNG — so enabling
/// faults on one relay does not perturb random draws anywhere else, and
/// a profile with all rates zero is a strict no-op (no draws happen).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RelayFaultProfile {
    /// Probability an EXTEND2 request is refused (circuit torn down with
    /// DESTROY back to the client, as a loaded or misconfigured relay
    /// would).
    pub extend_refuse_prob: f64,
    /// Probability a cell is shed instead of queued once the processing
    /// queue is at least [`RelayFaultProfile::overload_queue_depth`]
    /// deep.
    pub overload_drop_prob: f64,
    /// Queue depth at which overload shedding kicks in.
    pub overload_queue_depth: usize,
    /// Seed for this relay's private fault-draw stream.
    pub seed: u64,
}

impl RelayFaultProfile {
    /// A profile that injects nothing.
    pub fn disabled() -> RelayFaultProfile {
        RelayFaultProfile::default()
    }

    /// True when the profile can inject anything at all.
    pub fn is_enabled(&self) -> bool {
        self.extend_refuse_prob > 0.0 || self.overload_drop_prob > 0.0
    }

    /// Derives a per-relay copy with its own seed, so relays sharing one
    /// profile still draw independent fault streams.
    pub fn for_relay(mut self, index: u64) -> RelayFaultProfile {
        self.seed = self
            .seed
            .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            | 1;
        self
    }
}

/// Keys a circuit hop uniquely at this relay: the client-side link
/// connection and circuit id.
type HopKey = (ConnId, CircuitId);

/// One circuit's state at this relay.
struct CircuitState {
    crypto: RelayCrypto,
    /// Link/circuit toward the client.
    prev: HopKey,
    /// Link/circuit toward the exit, once extended.
    next: Option<HopKey>,
    /// Open exit streams: stream id → external connection.
    streams: HashMap<u16, ConnId>,
    /// Streams whose BEGIN is awaiting the external connect.
    pending_streams: HashMap<ConnId, u16>,
    torn_down: bool,
}

/// A cell waiting in the processing queue.
struct PendingCell {
    ready_at_ns: u64,
    cost_ms: f64,
    conn: ConnId,
    cell: Cell,
}

/// The relay process.
pub struct Relay {
    identity: KeyPair,
    config: RelayConfig,
    /// Link conns to peers (outbound, for extension).
    links: HashMap<NodeId, ConnId>,
    /// Cells queued while an outbound link handshakes.
    pending_link: HashMap<ConnId, Vec<Cell>>,
    /// Which node each conn talks to (both directions).
    conn_peer: HashMap<ConnId, NodeId>,
    /// Established conns (outbound ready or inbound accepted).
    conn_ready: HashMap<ConnId, bool>,
    circuits: HashMap<HopKey, CircuitState>,
    /// Secondary index: (conn, circ) on the *next* side → prev key.
    next_index: HashMap<HopKey, HopKey>,
    /// CREATE2s we sent, awaiting CREATED2: (conn, circ) → prev key.
    pending_create: HashMap<HopKey, HopKey>,
    /// External stream conns → (circuit prev key, stream id).
    stream_index: HashMap<ConnId, (HopKey, u16)>,
    /// Next circuit id for links we originate.
    next_circ_id: u32,
    /// Busy-until accounting for the processing queue (ns).
    busy_until_ns: u64,
    queue: VecDeque<PendingCell>,
    metrics: RelayMetrics,
    faults: RelayFaultProfile,
    /// Monotone counter for the private fault-draw stream.
    fault_draws: u64,
}

impl Relay {
    pub fn new(identity: KeyPair, config: RelayConfig) -> Relay {
        Relay {
            identity,
            config,
            links: HashMap::new(),
            pending_link: HashMap::new(),
            conn_peer: HashMap::new(),
            conn_ready: HashMap::new(),
            circuits: HashMap::new(),
            next_index: HashMap::new(),
            pending_create: HashMap::new(),
            stream_index: HashMap::new(),
            next_circ_id: 1,
            busy_until_ns: 0,
            queue: VecDeque::new(),
            metrics: RelayMetrics::new(),
            faults: RelayFaultProfile::disabled(),
            fault_draws: 0,
        }
    }

    /// Attaches an external metrics handle (callers keep a clone).
    pub fn with_metrics(mut self, metrics: RelayMetrics) -> Relay {
        self.metrics = metrics;
        self
    }

    /// Attaches a fault profile (disabled by default).
    pub fn with_faults(mut self, faults: RelayFaultProfile) -> Relay {
        self.faults = faults;
        self
    }

    /// One uniform draw in `[0, 1)` from this relay's private
    /// fault-injection stream. Call only when faults are enabled.
    fn fault_draw_u01(&mut self) -> f64 {
        let n = self.fault_draws;
        self.fault_draws += 1;
        let mut h = self
            .faults
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(n);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// This relay's metrics handle.
    pub fn metrics(&self) -> RelayMetrics {
        self.metrics.clone()
    }

    pub fn identity_public(&self) -> onion_crypto::PublicKey {
        self.identity.public
    }

    /// Samples this cell's processing cost and returns its ready time.
    fn enqueue_cell(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        if self.faults.is_enabled()
            && self.faults.overload_drop_prob > 0.0
            && self.queue.len() >= self.faults.overload_queue_depth
            && self.fault_draw_u01() < self.faults.overload_drop_prob
        {
            // Overloaded: shed the cell instead of queueing it.
            self.metrics.on_cell_dropped();
            return;
        }
        let cost_ms = self.config.base_proc_ms
            + if ctx.rng.gen_bool(self.config.busy_prob) {
                -ctx.rng.gen_range(1e-12..1.0f64).ln() * self.config.busy_mean_ms
            } else {
                0.0
            };
        let now_ns = ctx.now.as_nanos();
        self.busy_until_ns = self
            .busy_until_ns
            .max(now_ns)
            .saturating_add((cost_ms * 1e6) as u64);
        let ready_at_ns = self.busy_until_ns;
        self.metrics.on_enqueue();
        self.queue.push_back(PendingCell {
            ready_at_ns,
            cost_ms,
            conn,
            cell,
        });
        ctx.set_timer(SimDuration::from_nanos(ready_at_ns - now_ns), TIMER_PROC);
    }

    fn send_cell(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        if self.conn_ready.get(&conn).copied().unwrap_or(false) {
            ctx.send(conn, cell.encode());
        } else {
            self.pending_link.entry(conn).or_default().push(cell);
        }
    }

    /// Finds or opens a Tor link to `peer`.
    fn link_to(&mut self, ctx: &mut Context, peer: NodeId) -> ConnId {
        if let Some(&c) = self.links.get(&peer) {
            return c;
        }
        let c = ctx.open(peer, TrafficClass::Tor);
        self.links.insert(peer, c);
        self.conn_peer.insert(c, peer);
        self.conn_ready.insert(c, false);
        c
    }

    fn process_cell(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        match cell.command {
            CellCommand::Create2 => self.handle_create2(ctx, conn, cell),
            CellCommand::Created2 => self.handle_created2(ctx, conn, cell),
            CellCommand::Relay => self.handle_relay(ctx, conn, cell),
            CellCommand::Destroy => self.handle_destroy(ctx, conn, cell),
        }
    }

    fn handle_create2(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        let mut client_pk = [0u8; 32];
        client_pk.copy_from_slice(&cell.payload[..32]);
        // Fresh ephemeral from the simulation RNG.
        let mut seed = [0u8; 32];
        ctx.rng.fill(&mut seed);
        let ephemeral = KeyPair::from_secret(seed);
        let (reply, keys) = server_handshake(&self.identity, ephemeral, &client_pk);
        self.metrics.on_circuit_created();
        let key = (conn, cell.circ_id);
        self.circuits.insert(
            key,
            CircuitState {
                crypto: RelayCrypto::new(&keys),
                prev: key,
                next: None,
                streams: HashMap::new(),
                pending_streams: HashMap::new(),
                torn_down: false,
            },
        );
        let body = Extended2 {
            server_pk: reply.ephemeral_public,
            auth: reply.auth,
        };
        self.send_cell(
            ctx,
            conn,
            Cell::new(cell.circ_id, CellCommand::Created2, body.encode()),
        );
    }

    fn handle_created2(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        let key = (conn, cell.circ_id);
        let Some(prev_key) = self.pending_create.remove(&key) else {
            return; // stale
        };
        let Some(circuit) = self.circuits.get_mut(&prev_key) else {
            return;
        };
        circuit.next = Some(key);
        self.next_index.insert(key, prev_key);
        // Tunnel the CREATED2 body back as EXTENDED2.
        let body = &cell.payload[..Extended2::LEN];
        let rc = RelayCell::new(RelayCmd::Extended2, 0, body.to_vec());
        let payload = circuit.crypto.encrypt_backward(&rc);
        let (prev_conn, prev_circ) = circuit.prev;
        self.send_cell(
            ctx,
            prev_conn,
            Cell::new(prev_circ, CellCommand::Relay, payload),
        );
    }

    fn handle_relay(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        let key = (conn, cell.circ_id);
        if let Some(&prev_key) = self.next_index.get(&key) {
            // Backward direction: add our layer and pass toward client.
            let Some(circuit) = self.circuits.get_mut(&prev_key) else {
                return;
            };
            let payload = circuit.crypto.reencrypt_backward(&cell.payload);
            let (prev_conn, prev_circ) = circuit.prev;
            self.send_cell(
                ctx,
                prev_conn,
                Cell::new(prev_circ, CellCommand::Relay, payload),
            );
            return;
        }
        // Forward direction.
        let Some(circuit) = self.circuits.get_mut(&key) else {
            return; // unknown circuit: drop
        };
        match circuit.crypto.process_forward(&cell.payload) {
            RelayCryptoOutcome::Forward(payload) => {
                self.metrics.on_forwarded();
                let Some((next_conn, next_circ)) = circuit.next else {
                    // Unrecognized at the last hop: protocol violation.
                    self.teardown(ctx, key, true);
                    return;
                };
                self.send_cell(
                    ctx,
                    next_conn,
                    Cell::new(next_circ, CellCommand::Relay, payload),
                );
            }
            RelayCryptoOutcome::Recognized(rc) => {
                self.metrics.on_recognized();
                self.handle_recognized(ctx, key, rc)
            }
        }
    }

    fn handle_recognized(&mut self, ctx: &mut Context, key: HopKey, rc: RelayCell) {
        match rc.cmd {
            RelayCmd::Extend2 => {
                if self.faults.is_enabled()
                    && self.faults.extend_refuse_prob > 0.0
                    && self.fault_draw_u01() < self.faults.extend_refuse_prob
                {
                    // Refuse to extend: tear down so the client sees a
                    // DESTROY and can rebuild through the same pair.
                    self.metrics.on_extend_refused();
                    self.teardown(ctx, key, true);
                    return;
                }
                let Some(ext) = Extend2::decode(&rc.data) else {
                    self.teardown(ctx, key, true);
                    return;
                };
                let link = self.link_to(ctx, NodeId(ext.target));
                let out_circ = CircuitId(self.next_circ_id);
                self.next_circ_id += 1;
                self.pending_create.insert((link, out_circ), key);
                self.send_cell(
                    ctx,
                    link,
                    Cell::new(out_circ, CellCommand::Create2, ext.client_pk.to_vec()),
                );
            }
            RelayCmd::Begin => {
                // data = target node u32 (the simulator's address form).
                if rc.data.len() < 4 {
                    return;
                }
                let target = NodeId(u32::from_be_bytes([
                    rc.data[0], rc.data[1], rc.data[2], rc.data[3],
                ]));
                let ext_conn = ctx.open(target, TrafficClass::Tcp);
                self.conn_peer.insert(ext_conn, target);
                self.conn_ready.insert(ext_conn, false);
                let circuit = self.circuits.get_mut(&key).expect("circuit exists");
                circuit.pending_streams.insert(ext_conn, rc.stream_id);
                self.stream_index.insert(ext_conn, (key, rc.stream_id));
                self.metrics.on_stream_opened();
            }
            RelayCmd::Data => {
                let circuit = self.circuits.get_mut(&key).expect("circuit exists");
                if let Some(&ext_conn) = circuit.streams.get(&rc.stream_id) {
                    ctx.send(ext_conn, rc.data);
                }
            }
            RelayCmd::End => {
                let circuit = self.circuits.get_mut(&key).expect("circuit exists");
                if let Some(ext_conn) = circuit.streams.remove(&rc.stream_id) {
                    self.stream_index.remove(&ext_conn);
                    ctx.close(ext_conn);
                }
            }
            RelayCmd::SendMe => {} // flow control not enforced
            RelayCmd::Connected | RelayCmd::Extended2 => {
                // Client-bound commands arriving forward: protocol error.
                self.teardown(ctx, key, true);
            }
        }
    }

    fn handle_destroy(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        let key = (conn, cell.circ_id);
        if self.circuits.contains_key(&key) {
            self.teardown(ctx, key, false);
        } else if let Some(&prev_key) = self.next_index.get(&key) {
            // Destroy arriving from the exit side.
            self.teardown_toward_client(ctx, prev_key);
        }
    }

    /// Tears down a circuit identified by its prev-side key, propagating
    /// DESTROY toward the exit (and to the client if `notify_client`).
    fn teardown(&mut self, ctx: &mut Context, key: HopKey, notify_client: bool) {
        let Some(mut circuit) = self.circuits.remove(&key) else {
            return;
        };
        if circuit.torn_down {
            return;
        }
        circuit.torn_down = true;
        self.metrics.on_circuit_destroyed();
        for (_, ext_conn) in circuit.streams.drain() {
            self.stream_index.remove(&ext_conn);
            ctx.close(ext_conn);
        }
        for (ext_conn, _) in circuit.pending_streams.drain() {
            self.stream_index.remove(&ext_conn);
            ctx.close(ext_conn);
        }
        if let Some(next) = circuit.next {
            self.next_index.remove(&next);
            self.send_cell(ctx, next.0, Cell::new(next.1, CellCommand::Destroy, vec![]));
        }
        if notify_client {
            let (prev_conn, prev_circ) = circuit.prev;
            self.send_cell(
                ctx,
                prev_conn,
                Cell::new(prev_circ, CellCommand::Destroy, vec![]),
            );
        }
    }

    fn teardown_toward_client(&mut self, ctx: &mut Context, prev_key: HopKey) {
        let Some(circuit) = self.circuits.get(&prev_key) else {
            return;
        };
        let next = circuit.next;
        if let Some(next) = next {
            self.next_index.remove(&next);
        }
        let mut c = self.circuits.remove(&prev_key).unwrap();
        self.metrics.on_circuit_destroyed();
        for (_, ext_conn) in c.streams.drain() {
            self.stream_index.remove(&ext_conn);
            ctx.close(ext_conn);
        }
        let (prev_conn, prev_circ) = c.prev;
        self.send_cell(
            ctx,
            prev_conn,
            Cell::new(prev_circ, CellCommand::Destroy, vec![]),
        );
    }
}

impl Process for Relay {
    fn on_conn_opened(&mut self, _ctx: &mut Context, conn: ConnId, peer: NodeId) {
        self.conn_peer.insert(conn, peer);
        self.conn_ready.insert(conn, true);
    }

    fn on_conn_established(&mut self, ctx: &mut Context, conn: ConnId) {
        self.conn_ready.insert(conn, true);
        // Exit-stream connects complete here too.
        if let Some(&(key, stream_id)) = self.stream_index.get(&conn) {
            if let Some(circuit) = self.circuits.get_mut(&key) {
                if circuit.pending_streams.remove(&conn).is_some() {
                    circuit.streams.insert(stream_id, conn);
                    let rc = RelayCell::new(RelayCmd::Connected, stream_id, vec![]);
                    let payload = circuit.crypto.encrypt_backward(&rc);
                    let (prev_conn, prev_circ) = circuit.prev;
                    self.send_cell(
                        ctx,
                        prev_conn,
                        Cell::new(prev_circ, CellCommand::Relay, payload),
                    );
                }
            }
        }
        // Flush cells queued on this link.
        if let Some(cells) = self.pending_link.remove(&conn) {
            for cell in cells {
                ctx.send(conn, cell.encode());
            }
        }
    }

    fn on_data(&mut self, ctx: &mut Context, conn: ConnId, data: Vec<u8>) {
        if let Some(&(key, stream_id)) = self.stream_index.get(&conn) {
            // Data returning from an exit stream: wrap and send backward.
            let Some(circuit) = self.circuits.get_mut(&key) else {
                return;
            };
            let mut out = Vec::new();
            for chunk in data.chunks(tor_protocol::RELAY_DATA_LEN) {
                let rc = RelayCell::new(RelayCmd::Data, stream_id, chunk.to_vec());
                let payload = circuit.crypto.encrypt_backward(&rc);
                let (prev_conn, prev_circ) = circuit.prev;
                out.push((prev_conn, Cell::new(prev_circ, CellCommand::Relay, payload)));
            }
            for (conn, cell) in out {
                self.send_cell(ctx, conn, cell);
            }
            return;
        }
        // A link cell: queue behind the processing model.
        if let Some(cell) = Cell::decode(&data) {
            self.enqueue_cell(ctx, conn, cell);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, id: u64) {
        if id != TIMER_PROC {
            return;
        }
        let now_ns = ctx.now.as_nanos();
        while let Some(front) = self.queue.front() {
            if front.ready_at_ns > now_ns {
                break;
            }
            let pending = self.queue.pop_front().unwrap();
            self.metrics.on_processed(pending.cost_ms);
            self.process_cell(ctx, pending.conn, pending.cell);
        }
    }

    fn on_conn_closed(&mut self, ctx: &mut Context, conn: ConnId) {
        // An exit stream's target hung up: END toward the client.
        if let Some((key, stream_id)) = self.stream_index.remove(&conn) {
            if let Some(circuit) = self.circuits.get_mut(&key) {
                circuit.streams.remove(&stream_id);
                circuit.pending_streams.remove(&conn);
                let rc = RelayCell::new(RelayCmd::End, stream_id, vec![]);
                let payload = circuit.crypto.encrypt_backward(&rc);
                let (prev_conn, prev_circ) = circuit.prev;
                self.send_cell(
                    ctx,
                    prev_conn,
                    Cell::new(prev_circ, CellCommand::Relay, payload),
                );
            }
            return;
        }
        // A peer link died (e.g. a blackholed connect to a crashed
        // relay timed out): forget the cached link so future extends
        // reopen it, and fail everything that was riding on it.
        if let Some(peer) = self.conn_peer.remove(&conn) {
            if self.links.get(&peer) == Some(&conn) {
                self.links.remove(&peer);
            }
        }
        self.conn_ready.remove(&conn);
        self.pending_link.remove(&conn);
        // CREATE2s awaiting a reply on this link: DESTROY to clients.
        let dead_creates: Vec<(HopKey, HopKey)> = self
            .pending_create
            .iter()
            .filter(|((c, _), _)| *c == conn)
            .map(|(&k, &v)| (k, v))
            .collect();
        for (key, prev_key) in dead_creates {
            self.pending_create.remove(&key);
            self.teardown(ctx, prev_key, true);
        }
        // Established circuits whose next hop used this link.
        let dead_next: Vec<HopKey> = self
            .next_index
            .iter()
            .filter(|((c, _), _)| *c == conn)
            .map(|(_, &prev)| prev)
            .collect();
        for prev_key in dead_next {
            self.teardown(ctx, prev_key, true);
        }
        // Circuits whose client side was this link: tear toward exit.
        let dead_prev: Vec<HopKey> = self
            .circuits
            .keys()
            .filter(|(c, _)| *c == conn)
            .copied()
            .collect();
        for key in dead_prev {
            self.teardown(ctx, key, false);
        }
    }
}
