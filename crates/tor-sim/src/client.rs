//! The onion proxy: the client-side circuit state machine.
//!
//! Mirrors a stock Tor client's behaviour for the operations Ting needs,
//! including the two policy constraints §3.1 calls out — one-hop circuits
//! are disallowed, and a relay may appear at most once per circuit. The
//! proxy is driven through a shared command queue (see
//! [`crate::control::Controller`]), the simulator-friendly equivalent of
//! Stem's control-port connection.

use netsim::{ConnId, Context, NodeId, Process, SimTime, TrafficClass};
use onion_crypto::{
    client_handshake_finish, client_handshake_start, ClientHandshakeState, KeyPair, PublicKey,
};
use rand::Rng;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use tor_protocol::{
    Cell, CellCommand, CircuitId, ClientCrypto, Extend2, Extended2, RelayCell, RelayCmd,
};

/// Why a circuit build or stream attach was refused locally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// Paths must have ≥ 2 relays ("one-hop circuits are disallowed").
    TooShort,
    /// A relay appears more than once on the path.
    RepeatedRelay,
    /// A relay on the path has no known identity key.
    UnknownRelay(NodeId),
}

/// Commands the controller enqueues for the proxy.
#[derive(Debug)]
pub(crate) enum Command {
    BuildCircuit {
        handle: u64,
        path: Vec<NodeId>,
    },
    OpenStream {
        handle: u64,
        circuit: u64,
        target: NodeId,
    },
    SendData {
        stream: u64,
        data: Vec<u8>,
    },
    CloseStream {
        stream: u64,
    },
    CloseCircuit {
        circuit: u64,
    },
}

/// Externally visible circuit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitStatus {
    Building,
    Ready,
    Failed,
    Closed,
}

/// Externally visible stream state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStatus {
    Connecting,
    Open,
    Closed,
}

/// State shared between the proxy process and the controller handle.
#[derive(Debug, Default)]
pub(crate) struct ProxyShared {
    pub commands: VecDeque<Command>,
    pub circuit_status: HashMap<u64, CircuitStatus>,
    pub circuit_errors: HashMap<u64, PolicyError>,
    pub stream_status: HashMap<u64, StreamStatus>,
    /// Echoed data arriving on a stream: (arrival time, bytes).
    pub received: HashMap<u64, Vec<(SimTime, Vec<u8>)>>,
}

/// One circuit from the proxy's point of view.
struct ClientCircuit {
    path: Vec<NodeId>,
    identities: Vec<PublicKey>,
    link: ConnId,
    circ_id: CircuitId,
    crypto: ClientCrypto,
    /// In-flight handshake for the hop currently being established.
    hs: Option<ClientHandshakeState>,
    /// Streams on this circuit: stream id → external handle.
    streams: HashMap<u16, u64>,
    next_stream_id: u16,
    alive: bool,
}

/// The onion-proxy process.
pub struct OnionProxy {
    shared: Rc<RefCell<ProxyShared>>,
    /// Identity keys for every relay the proxy may extend to.
    identity_map: HashMap<NodeId, PublicKey>,
    links: HashMap<NodeId, ConnId>,
    conn_ready: HashMap<ConnId, bool>,
    pending_cells: HashMap<ConnId, Vec<Cell>>,
    circuits: HashMap<u64, ClientCircuit>,
    /// Index (link conn, circuit id) → circuit handle.
    circ_index: HashMap<(ConnId, CircuitId), u64>,
    /// Index stream handle → (circuit handle, stream id).
    stream_index: HashMap<u64, (u64, u16)>,
    next_circ_id: u32,
}

impl OnionProxy {
    pub(crate) fn new(
        shared: Rc<RefCell<ProxyShared>>,
        identity_map: HashMap<NodeId, PublicKey>,
    ) -> OnionProxy {
        OnionProxy {
            shared,
            identity_map,
            links: HashMap::new(),
            conn_ready: HashMap::new(),
            pending_cells: HashMap::new(),
            circuits: HashMap::new(),
            circ_index: HashMap::new(),
            stream_index: HashMap::new(),
            next_circ_id: 1,
        }
    }

    fn link_to(&mut self, ctx: &mut Context, relay: NodeId) -> ConnId {
        if let Some(&c) = self.links.get(&relay) {
            return c;
        }
        let c = ctx.open(relay, TrafficClass::Tor);
        self.links.insert(relay, c);
        self.conn_ready.insert(c, false);
        c
    }

    fn send_cell(&mut self, ctx: &mut Context, conn: ConnId, cell: Cell) {
        if self.conn_ready.get(&conn).copied().unwrap_or(false) {
            ctx.send(conn, cell.encode());
        } else {
            self.pending_cells.entry(conn).or_default().push(cell);
        }
    }

    /// Validates the §3.1 client policies.
    fn validate_path(&self, path: &[NodeId]) -> Result<(), PolicyError> {
        if path.len() < 2 {
            return Err(PolicyError::TooShort);
        }
        for (i, a) in path.iter().enumerate() {
            if path[i + 1..].contains(a) {
                return Err(PolicyError::RepeatedRelay);
            }
            if !self.identity_map.contains_key(a) {
                return Err(PolicyError::UnknownRelay(*a));
            }
        }
        Ok(())
    }

    fn start_build(&mut self, ctx: &mut Context, handle: u64, path: Vec<NodeId>) {
        if let Err(e) = self.validate_path(&path) {
            let mut shared = self.shared.borrow_mut();
            shared.circuit_status.insert(handle, CircuitStatus::Failed);
            shared.circuit_errors.insert(handle, e);
            return;
        }
        let identities: Vec<PublicKey> = path.iter().map(|n| self.identity_map[n]).collect();
        let link = self.link_to(ctx, path[0]);
        let circ_id = CircuitId(self.next_circ_id);
        self.next_circ_id += 1;

        let mut seed = [0u8; 32];
        ctx.rng.fill(&mut seed);
        let (hs, x_pub) = client_handshake_start(KeyPair::from_secret(seed), identities[0]);

        self.circuits.insert(
            handle,
            ClientCircuit {
                path,
                identities,
                link,
                circ_id,
                crypto: ClientCrypto::new(),
                hs: Some(hs),
                streams: HashMap::new(),
                next_stream_id: 1,
                alive: true,
            },
        );
        self.circ_index.insert((link, circ_id), handle);
        self.shared
            .borrow_mut()
            .circuit_status
            .insert(handle, CircuitStatus::Building);
        self.send_cell(
            ctx,
            link,
            Cell::new(circ_id, CellCommand::Create2, x_pub.to_vec()),
        );
    }

    /// Sends the next EXTEND2, or marks the circuit ready.
    fn continue_build(&mut self, ctx: &mut Context, handle: u64) {
        let circuit = self.circuits.get_mut(&handle).expect("circuit exists");
        let established = circuit.crypto.len();
        if established == circuit.path.len() {
            self.shared
                .borrow_mut()
                .circuit_status
                .insert(handle, CircuitStatus::Ready);
            return;
        }
        let mut seed = [0u8; 32];
        ctx.rng.fill(&mut seed);
        let (hs, x_pub) =
            client_handshake_start(KeyPair::from_secret(seed), circuit.identities[established]);
        circuit.hs = Some(hs);
        let ext = Extend2 {
            target: circuit.path[established].0,
            client_pk: x_pub,
        };
        let rc = RelayCell::new(RelayCmd::Extend2, 0, ext.encode());
        let payload = circuit.crypto.encrypt_forward(established - 1, &rc);
        let (link, circ_id) = (circuit.link, circuit.circ_id);
        self.send_cell(ctx, link, Cell::new(circ_id, CellCommand::Relay, payload));
    }

    fn fail_circuit(&mut self, handle: u64) {
        if let Some(c) = self.circuits.get_mut(&handle) {
            c.alive = false;
        }
        self.shared
            .borrow_mut()
            .circuit_status
            .insert(handle, CircuitStatus::Failed);
    }

    fn handle_created2(&mut self, ctx: &mut Context, handle: u64, body: &[u8]) {
        let circuit = self.circuits.get_mut(&handle).expect("circuit exists");
        let Some(reply) = Extended2::decode(&body[..Extended2::LEN.min(body.len())]) else {
            self.fail_circuit(handle);
            return;
        };
        let Some(hs) = circuit.hs.take() else {
            self.fail_circuit(handle);
            return;
        };
        let Some(keys) = client_handshake_finish(
            &hs,
            &onion_crypto::ntor::ServerReply {
                ephemeral_public: reply.server_pk,
                auth: reply.auth,
            },
        ) else {
            self.fail_circuit(handle);
            return;
        };
        circuit.crypto.add_hop(&keys);
        self.continue_build(ctx, handle);
    }

    fn handle_backward(&mut self, ctx: &mut Context, handle: u64, hop: usize, rc: RelayCell) {
        let circuit = self.circuits.get_mut(&handle).expect("circuit exists");
        match rc.cmd {
            RelayCmd::Extended2 => {
                // Must come from the current last hop.
                if hop + 1 != circuit.crypto.len() {
                    self.fail_circuit(handle);
                    return;
                }
                self.handle_created2(ctx, handle, &rc.data);
            }
            RelayCmd::Connected => {
                if let Some(&stream_handle) = circuit.streams.get(&rc.stream_id) {
                    self.shared
                        .borrow_mut()
                        .stream_status
                        .insert(stream_handle, StreamStatus::Open);
                }
            }
            RelayCmd::Data => {
                if let Some(&stream_handle) = circuit.streams.get(&rc.stream_id) {
                    self.shared
                        .borrow_mut()
                        .received
                        .entry(stream_handle)
                        .or_default()
                        .push((ctx.now, rc.data));
                }
            }
            RelayCmd::End => {
                if let Some(stream_handle) = circuit.streams.remove(&rc.stream_id) {
                    self.shared
                        .borrow_mut()
                        .stream_status
                        .insert(stream_handle, StreamStatus::Closed);
                }
            }
            _ => {}
        }
    }

    fn handle_command(&mut self, ctx: &mut Context, cmd: Command) {
        match cmd {
            Command::BuildCircuit { handle, path } => self.start_build(ctx, handle, path),
            Command::OpenStream {
                handle,
                circuit,
                target,
            } => {
                let Some(c) = self.circuits.get_mut(&circuit) else {
                    self.shared
                        .borrow_mut()
                        .stream_status
                        .insert(handle, StreamStatus::Closed);
                    return;
                };
                let stream_id = c.next_stream_id;
                c.next_stream_id += 1;
                c.streams.insert(stream_id, handle);
                self.stream_index.insert(handle, (circuit, stream_id));
                self.shared
                    .borrow_mut()
                    .stream_status
                    .insert(handle, StreamStatus::Connecting);
                let mut data = target.0.to_be_bytes().to_vec();
                data.extend_from_slice(&7u16.to_be_bytes()); // echo port
                let rc = RelayCell::new(RelayCmd::Begin, stream_id, data);
                let last_hop = c.crypto.len() - 1;
                let payload = c.crypto.encrypt_forward(last_hop, &rc);
                let (link, circ_id) = (c.link, c.circ_id);
                self.send_cell(ctx, link, Cell::new(circ_id, CellCommand::Relay, payload));
            }
            Command::SendData { stream, data } => {
                let Some(&(circuit, stream_id)) = self.stream_index.get(&stream) else {
                    return;
                };
                let Some(c) = self.circuits.get_mut(&circuit) else {
                    return;
                };
                if !c.alive {
                    return;
                }
                let mut out = Vec::new();
                for chunk in data.chunks(tor_protocol::RELAY_DATA_LEN) {
                    let rc = RelayCell::new(RelayCmd::Data, stream_id, chunk.to_vec());
                    let last_hop = c.crypto.len() - 1;
                    let payload = c.crypto.encrypt_forward(last_hop, &rc);
                    out.push((c.link, Cell::new(c.circ_id, CellCommand::Relay, payload)));
                }
                for (link, cell) in out {
                    self.send_cell(ctx, link, cell);
                }
            }
            Command::CloseStream { stream } => {
                let Some(&(circuit, stream_id)) = self.stream_index.get(&stream) else {
                    return;
                };
                let Some(c) = self.circuits.get_mut(&circuit) else {
                    return;
                };
                if c.streams.remove(&stream_id).is_some() && c.alive {
                    let rc = RelayCell::new(RelayCmd::End, stream_id, vec![]);
                    let last_hop = c.crypto.len() - 1;
                    let payload = c.crypto.encrypt_forward(last_hop, &rc);
                    let (link, circ_id) = (c.link, c.circ_id);
                    self.send_cell(ctx, link, Cell::new(circ_id, CellCommand::Relay, payload));
                }
                self.shared
                    .borrow_mut()
                    .stream_status
                    .insert(stream, StreamStatus::Closed);
            }
            Command::CloseCircuit { circuit } => {
                let Some(c) = self.circuits.remove(&circuit) else {
                    return;
                };
                self.circ_index.remove(&(c.link, c.circ_id));
                for stream_handle in c.streams.values() {
                    self.shared
                        .borrow_mut()
                        .stream_status
                        .insert(*stream_handle, StreamStatus::Closed);
                    self.stream_index.remove(stream_handle);
                }
                self.send_cell(
                    ctx,
                    c.link,
                    Cell::new(c.circ_id, CellCommand::Destroy, vec![]),
                );
                self.shared
                    .borrow_mut()
                    .circuit_status
                    .insert(circuit, CircuitStatus::Closed);
            }
        }
    }
}

impl Process for OnionProxy {
    fn on_conn_established(&mut self, ctx: &mut Context, conn: ConnId) {
        self.conn_ready.insert(conn, true);
        if let Some(cells) = self.pending_cells.remove(&conn) {
            for cell in cells {
                ctx.send(conn, cell.encode());
            }
        }
    }

    fn on_data(&mut self, ctx: &mut Context, conn: ConnId, data: Vec<u8>) {
        let Some(cell) = Cell::decode(&data) else {
            return;
        };
        let Some(&handle) = self.circ_index.get(&(conn, cell.circ_id)) else {
            return;
        };
        match cell.command {
            CellCommand::Created2 => self.handle_created2(ctx, handle, &cell.payload),
            CellCommand::Relay => {
                let circuit = self.circuits.get_mut(&handle).expect("indexed");
                match circuit.crypto.decrypt_backward(&cell.payload) {
                    Some((hop, rc)) => self.handle_backward(ctx, handle, hop, rc),
                    None => self.fail_circuit(handle),
                }
            }
            CellCommand::Destroy => {
                self.fail_circuit(handle);
            }
            CellCommand::Create2 => {} // clients never receive CREATE2
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, _id: u64) {
        // Wake: drain the command queue.
        loop {
            let cmd = self.shared.borrow_mut().commands.pop_front();
            match cmd {
                Some(c) => self.handle_command(ctx, c),
                None => break,
            }
        }
    }
}
