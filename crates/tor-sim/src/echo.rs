//! The TCP echo server (`d` in the paper's measurement setup).
//!
//! §3.1: "an end-to-end echo client and server to allow us to collect
//! RTT measurements through Tor circuits … our application operates over
//! TCP, and can thus be used over Tor." The server here is as minimal as
//! the paper's: every framed message comes straight back.

use netsim::{ConnId, Context, NodeId, Process};

/// Echoes every message back on its connection and counts traffic.
#[derive(Debug, Default)]
pub struct EchoServer {
    /// Total messages echoed (for sanity checks in tests/experiments).
    pub echoed: u64,
    /// Connections currently open to the server.
    pub open_conns: u64,
}

impl EchoServer {
    pub fn new() -> EchoServer {
        EchoServer::default()
    }
}

impl Process for EchoServer {
    fn on_conn_opened(&mut self, _ctx: &mut Context, _conn: ConnId, _peer: NodeId) {
        self.open_conns += 1;
    }

    fn on_data(&mut self, ctx: &mut Context, conn: ConnId, data: Vec<u8>) {
        self.echoed += 1;
        ctx.send(conn, data);
    }

    fn on_conn_closed(&mut self, _ctx: &mut Context, _conn: ConnId) {
        self.open_conns = self.open_conns.saturating_sub(1);
    }
}
