//! Relay observability.
//!
//! A production relay exports counters; so does this one. Each
//! [`crate::relay::Relay`] can be given a [`RelayMetrics`] handle at
//! construction; the same handle stays with the caller, which can read
//! a consistent [`MetricsSnapshot`] at any time without touching the
//! simulator. Used by tests to assert on internal behaviour (queue
//! depths, teardown completeness) without poking at private state.
//!
//! The measurement-pipeline counters ([`MeasurementMetrics`],
//! [`MeasurementSnapshot`]) moved to the `obs` crate when the unified
//! observability layer landed; they are re-exported here so existing
//! `tor_sim::...` paths keep working.

pub use obs::{MeasurementMetrics, MeasurementSnapshot};

use std::cell::Cell;
use std::rc::Rc;

/// Counters one relay maintains. All monotonic except the gauges.
#[derive(Debug, Default)]
struct Inner {
    cells_processed: Cell<u64>,
    cells_forwarded: Cell<u64>,
    cells_recognized: Cell<u64>,
    circuits_created: Cell<u64>,
    circuits_destroyed: Cell<u64>,
    streams_opened: Cell<u64>,
    queue_depth: Cell<u64>,
    queue_high_water: Cell<u64>,
    busy_ms_accumulated: Cell<f64>,
    cells_dropped: Cell<u64>,
    extends_refused: Cell<u64>,
}

/// A cheap, clonable handle to one relay's counters.
#[derive(Debug, Clone, Default)]
pub struct RelayMetrics {
    inner: Rc<Inner>,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    pub cells_processed: u64,
    pub cells_forwarded: u64,
    pub cells_recognized: u64,
    pub circuits_created: u64,
    pub circuits_destroyed: u64,
    pub streams_opened: u64,
    pub queue_depth: u64,
    pub queue_high_water: u64,
    /// Total simulated milliseconds spent processing cells.
    pub busy_ms_accumulated: f64,
    /// Cells shed under injected overload faults.
    pub cells_dropped: u64,
    /// EXTEND2 requests the relay refused under injected faults.
    pub extends_refused: u64,
}

impl RelayMetrics {
    pub fn new() -> RelayMetrics {
        RelayMetrics::default()
    }

    pub(crate) fn on_enqueue(&self) {
        let d = self.inner.queue_depth.get() + 1;
        self.inner.queue_depth.set(d);
        if d > self.inner.queue_high_water.get() {
            self.inner.queue_high_water.set(d);
        }
    }

    pub(crate) fn on_processed(&self, cost_ms: f64) {
        self.inner
            .queue_depth
            .set(self.inner.queue_depth.get().saturating_sub(1));
        self.inner
            .cells_processed
            .set(self.inner.cells_processed.get() + 1);
        self.inner
            .busy_ms_accumulated
            .set(self.inner.busy_ms_accumulated.get() + cost_ms);
    }

    pub(crate) fn on_forwarded(&self) {
        self.inner
            .cells_forwarded
            .set(self.inner.cells_forwarded.get() + 1);
    }

    pub(crate) fn on_recognized(&self) {
        self.inner
            .cells_recognized
            .set(self.inner.cells_recognized.get() + 1);
    }

    pub(crate) fn on_circuit_created(&self) {
        self.inner
            .circuits_created
            .set(self.inner.circuits_created.get() + 1);
    }

    pub(crate) fn on_circuit_destroyed(&self) {
        self.inner
            .circuits_destroyed
            .set(self.inner.circuits_destroyed.get() + 1);
    }

    pub(crate) fn on_stream_opened(&self) {
        self.inner
            .streams_opened
            .set(self.inner.streams_opened.get() + 1);
    }

    pub(crate) fn on_cell_dropped(&self) {
        self.inner
            .cells_dropped
            .set(self.inner.cells_dropped.get() + 1);
    }

    pub(crate) fn on_extend_refused(&self) {
        self.inner
            .extends_refused
            .set(self.inner.extends_refused.get() + 1);
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cells_processed: self.inner.cells_processed.get(),
            cells_forwarded: self.inner.cells_forwarded.get(),
            cells_recognized: self.inner.cells_recognized.get(),
            circuits_created: self.inner.circuits_created.get(),
            circuits_destroyed: self.inner.circuits_destroyed.get(),
            streams_opened: self.inner.streams_opened.get(),
            queue_depth: self.inner.queue_depth.get(),
            queue_high_water: self.inner.queue_high_water.get(),
            busy_ms_accumulated: self.inner.busy_ms_accumulated.get(),
            cells_dropped: self.inner.cells_dropped.get(),
            extends_refused: self.inner.extends_refused.get(),
        }
    }
}

impl MetricsSnapshot {
    /// Live circuits right now.
    pub fn open_circuits(&self) -> u64 {
        self.circuits_created
            .saturating_sub(self.circuits_destroyed)
    }
}
