//! Relay observability.
//!
//! A production relay exports counters; so does this one. Each
//! [`crate::relay::Relay`] can be given a [`RelayMetrics`] handle at
//! construction; the same handle stays with the caller, which can read
//! a consistent [`MetricsSnapshot`] at any time without touching the
//! simulator. Used by tests to assert on internal behaviour (queue
//! depths, teardown completeness) without poking at private state.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Counters one relay maintains. All monotonic except the gauges.
#[derive(Debug, Default)]
struct Inner {
    cells_processed: Cell<u64>,
    cells_forwarded: Cell<u64>,
    cells_recognized: Cell<u64>,
    circuits_created: Cell<u64>,
    circuits_destroyed: Cell<u64>,
    streams_opened: Cell<u64>,
    queue_depth: Cell<u64>,
    queue_high_water: Cell<u64>,
    busy_ms_accumulated: Cell<f64>,
    cells_dropped: Cell<u64>,
    extends_refused: Cell<u64>,
}

/// A cheap, clonable handle to one relay's counters.
#[derive(Debug, Clone, Default)]
pub struct RelayMetrics {
    inner: Rc<Inner>,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    pub cells_processed: u64,
    pub cells_forwarded: u64,
    pub cells_recognized: u64,
    pub circuits_created: u64,
    pub circuits_destroyed: u64,
    pub streams_opened: u64,
    pub queue_depth: u64,
    pub queue_high_water: u64,
    /// Total simulated milliseconds spent processing cells.
    pub busy_ms_accumulated: f64,
    /// Cells shed under injected overload faults.
    pub cells_dropped: u64,
    /// EXTEND2 requests the relay refused under injected faults.
    pub extends_refused: u64,
}

impl RelayMetrics {
    pub fn new() -> RelayMetrics {
        RelayMetrics::default()
    }

    pub(crate) fn on_enqueue(&self) {
        let d = self.inner.queue_depth.get() + 1;
        self.inner.queue_depth.set(d);
        if d > self.inner.queue_high_water.get() {
            self.inner.queue_high_water.set(d);
        }
    }

    pub(crate) fn on_processed(&self, cost_ms: f64) {
        self.inner
            .queue_depth
            .set(self.inner.queue_depth.get().saturating_sub(1));
        self.inner
            .cells_processed
            .set(self.inner.cells_processed.get() + 1);
        self.inner
            .busy_ms_accumulated
            .set(self.inner.busy_ms_accumulated.get() + cost_ms);
    }

    pub(crate) fn on_forwarded(&self) {
        self.inner
            .cells_forwarded
            .set(self.inner.cells_forwarded.get() + 1);
    }

    pub(crate) fn on_recognized(&self) {
        self.inner
            .cells_recognized
            .set(self.inner.cells_recognized.get() + 1);
    }

    pub(crate) fn on_circuit_created(&self) {
        self.inner
            .circuits_created
            .set(self.inner.circuits_created.get() + 1);
    }

    pub(crate) fn on_circuit_destroyed(&self) {
        self.inner
            .circuits_destroyed
            .set(self.inner.circuits_destroyed.get() + 1);
    }

    pub(crate) fn on_stream_opened(&self) {
        self.inner
            .streams_opened
            .set(self.inner.streams_opened.get() + 1);
    }

    pub(crate) fn on_cell_dropped(&self) {
        self.inner
            .cells_dropped
            .set(self.inner.cells_dropped.get() + 1);
    }

    pub(crate) fn on_extend_refused(&self) {
        self.inner
            .extends_refused
            .set(self.inner.extends_refused.get() + 1);
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cells_processed: self.inner.cells_processed.get(),
            cells_forwarded: self.inner.cells_forwarded.get(),
            cells_recognized: self.inner.cells_recognized.get(),
            circuits_created: self.inner.circuits_created.get(),
            circuits_destroyed: self.inner.circuits_destroyed.get(),
            streams_opened: self.inner.streams_opened.get(),
            queue_depth: self.inner.queue_depth.get(),
            queue_high_water: self.inner.queue_high_water.get(),
            busy_ms_accumulated: self.inner.busy_ms_accumulated.get(),
            cells_dropped: self.inner.cells_dropped.get(),
            extends_refused: self.inner.extends_refused.get(),
        }
    }
}

impl MetricsSnapshot {
    /// Live circuits right now.
    pub fn open_circuits(&self) -> u64 {
        self.circuits_created
            .saturating_sub(self.circuits_destroyed)
    }
}

/// Counters the measurement pipeline (Ting driver + scanner) maintains.
#[derive(Debug, Default)]
struct MeasurementInner {
    circuits_failed: Cell<u64>,
    probes_timed_out: Cell<u64>,
    retries: Cell<u64>,
    pairs_requeued: Cell<u64>,
    estimates_rejected: Cell<u64>,
    estimates_flagged: Cell<u64>,
    relays_quarantined: Cell<u64>,
    relays_released: Cell<u64>,
    probation_probes: Cell<u64>,
    /// Human-readable retry trace — one line per resilience event, in
    /// order. Deterministic runs produce identical traces.
    trace: RefCell<Vec<String>>,
}

/// A cheap, clonable handle to the measurement pipeline's counters.
#[derive(Debug, Clone, Default)]
pub struct MeasurementMetrics {
    inner: Rc<MeasurementInner>,
}

/// A point-in-time copy of the measurement counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeasurementSnapshot {
    /// Circuit builds that did not reach Ready (including rebuilds).
    pub circuits_failed: u64,
    /// Probes whose echo missed the per-probe deadline.
    pub probes_timed_out: u64,
    /// Measurement attempts retried after a failure.
    pub retries: u64,
    /// Scanner pairs put back on the queue under backoff.
    pub pairs_requeued: u64,
    /// Estimates refused by validation (never cached); the reason code
    /// is in the trace.
    pub estimates_rejected: u64,
    /// Estimates cached but flagged suspect by validation.
    pub estimates_flagged: u64,
    /// Relay quarantine entries (health score collapsed).
    pub relays_quarantined: u64,
    /// Relay quarantine releases (probation or decay).
    pub relays_released: u64,
    /// Probation probes scheduled for quarantined relays.
    pub probation_probes: u64,
}

impl MeasurementMetrics {
    pub fn new() -> MeasurementMetrics {
        MeasurementMetrics::default()
    }

    pub fn on_circuit_failed(&self) {
        self.inner
            .circuits_failed
            .set(self.inner.circuits_failed.get() + 1);
    }

    pub fn on_probe_timed_out(&self) {
        self.inner
            .probes_timed_out
            .set(self.inner.probes_timed_out.get() + 1);
    }

    pub fn on_retry(&self) {
        self.inner.retries.set(self.inner.retries.get() + 1);
    }

    pub fn on_pair_requeued(&self) {
        self.inner
            .pairs_requeued
            .set(self.inner.pairs_requeued.get() + 1);
    }

    pub fn on_estimate_rejected(&self) {
        self.inner
            .estimates_rejected
            .set(self.inner.estimates_rejected.get() + 1);
    }

    pub fn on_estimate_flagged(&self) {
        self.inner
            .estimates_flagged
            .set(self.inner.estimates_flagged.get() + 1);
    }

    pub fn on_relay_quarantined(&self) {
        self.inner
            .relays_quarantined
            .set(self.inner.relays_quarantined.get() + 1);
    }

    pub fn on_relay_released(&self) {
        self.inner
            .relays_released
            .set(self.inner.relays_released.get() + 1);
    }

    pub fn on_probation_probe(&self) {
        self.inner
            .probation_probes
            .set(self.inner.probation_probes.get() + 1);
    }

    /// Appends one line to the retry trace.
    pub fn trace(&self, line: String) {
        self.inner.trace.borrow_mut().push(line);
    }

    /// The retry trace so far.
    pub fn trace_lines(&self) -> Vec<String> {
        self.inner.trace.borrow().clone()
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> MeasurementSnapshot {
        MeasurementSnapshot {
            circuits_failed: self.inner.circuits_failed.get(),
            probes_timed_out: self.inner.probes_timed_out.get(),
            retries: self.inner.retries.get(),
            pairs_requeued: self.inner.pairs_requeued.get(),
            estimates_rejected: self.inner.estimates_rejected.get(),
            estimates_flagged: self.inner.estimates_flagged.get(),
            relays_quarantined: self.inner.relays_quarantined.get(),
            relays_released: self.inner.relays_released.get(),
            probation_probes: self.inner.probation_probes.get(),
        }
    }
}
