//! A miniature Tor overlay running on the `netsim` substrate.
//!
//! This is the system Ting measures through: onion routers with real
//! layered cryptography, a directory with bandwidth-weighted relay
//! selection, an onion proxy that builds circuits under the same policy
//! constraints as a stock Tor client (no one-hop circuits, no repeated
//! relay), and a Stem-like [`control::Controller`] that lets measurement
//! code construct *explicit* circuits and attach streams to them — the
//! two capabilities §3.1 of the paper identifies as Ting's building
//! blocks.
//!
//! Module map:
//!
//! * [`directory`] — relay descriptors, consensus, weighted selection;
//! * [`relay`] — the onion-router state machine, including the
//!   per-circuit queue + processing-cost model that produces the
//!   forwarding delays Ting must cancel out (§3.3, §4.3);
//! * [`client`] — the onion proxy state machine;
//! * [`control`] — the controller handle measurement drivers use;
//! * [`echo`] — the TCP echo server (`d` in the paper's setup);
//! * [`network`] — builders that assemble underlay + relays + proxy into
//!   a runnable [`network::TorNetwork`], including the PlanetLab-like
//!   validation testbed and live-network scenarios of §4;
//! * [`churn`] — the relay-population process behind Fig. 18;
//! * [`traffic`] — finite background workloads for realism tests.

pub mod churn;
pub mod client;
pub mod control;
pub mod directory;
pub mod echo;
pub mod metrics;
pub mod network;
pub mod relay;
pub mod traffic;

pub use control::{CircuitHandle, CircuitStatus, Controller, StreamHandle, StreamStatus};
pub use directory::{Consensus, RelayDescriptor, RelayFlags};
pub use metrics::{MeasurementMetrics, MeasurementSnapshot, MetricsSnapshot, RelayMetrics};
pub use network::{TorNetwork, TorNetworkBuilder, Vantage};
pub use relay::{RelayConfig, RelayFaultProfile};
