//! Finite background workloads.
//!
//! The relay's stochastic queueing model ([`crate::relay::RelayConfig`])
//! is the primary stand-in for network-wide background load, but some
//! tests want *real* cross-traffic contending in relay queues. A
//! [`BackgroundSender`] floods a relay with well-formed RELAY cells on
//! unknown circuits: the relay pays full queue + processing cost before
//! discarding them, which is exactly the contention a busy relay's other
//! circuits impose on a Ting probe.

use netsim::{ConnId, Context, NodeId, Process, SimDuration, TrafficClass};
use tor_protocol::{Cell, CellCommand, CircuitId, PAYLOAD_LEN};

const TIMER_TICK: u64 = 2;

/// Sends `count` junk relay cells to `target` at `interval`, then stops.
pub struct BackgroundSender {
    target: NodeId,
    interval: SimDuration,
    remaining: u64,
    conn: Option<ConnId>,
    sent: u64,
}

impl BackgroundSender {
    pub fn new(target: NodeId, interval: SimDuration, count: u64) -> BackgroundSender {
        BackgroundSender {
            target,
            interval,
            remaining: count,
            conn: None,
            sent: 0,
        }
    }

    /// Cells sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn send_one(&mut self, ctx: &mut Context) {
        if let Some(conn) = self.conn {
            // A decodable cell on a circuit id the relay has never seen:
            // processed (queued, decrypt attempt impossible → dropped at
            // lookup) at full cost.
            let cell = Cell::new(
                CircuitId(0xffff_0000 | (self.sent as u32 & 0xffff)),
                CellCommand::Relay,
                vec![0xbb; PAYLOAD_LEN],
            );
            ctx.send(conn, cell.encode());
            self.sent += 1;
            self.remaining -= 1;
        }
        if self.remaining > 0 {
            ctx.set_timer(self.interval, TIMER_TICK);
        }
    }
}

impl Process for BackgroundSender {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.remaining == 0 {
            return;
        }
        self.conn = Some(ctx.open(self.target, TrafficClass::Tor));
    }

    fn on_conn_established(&mut self, ctx: &mut Context, _conn: ConnId) {
        self.send_one(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context, id: u64) {
        if id == TIMER_TICK && self.remaining > 0 {
            self.send_one(ctx);
        }
    }
}
