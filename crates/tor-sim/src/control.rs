//! The controller: a Stem-equivalent programmatic interface.
//!
//! §3.1: "we make use of Stem, a Tor controller that provides a clean
//! programmatic interface for both constructing Tor circuits and
//! attaching TCP connections to them." [`Controller`] is that interface
//! for the simulated proxy: build an explicit circuit, attach a stream,
//! send data, read echoes with their arrival timestamps, tear down.
//!
//! Mechanically it shares a command queue with the [`OnionProxy`]
//! process and pokes the simulator's wake timer so commands are executed
//! at the current virtual instant.

pub use crate::client::{CircuitStatus, PolicyError, StreamStatus};
use crate::client::{Command, OnionProxy, ProxyShared};
use netsim::{NodeId, SimTime, Simulator};
use onion_crypto::PublicKey;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Opaque handle to a circuit managed through a [`Controller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CircuitHandle(pub u64);

/// Opaque handle to a stream attached to a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamHandle(pub u64);

/// Controller for one onion proxy.
pub struct Controller {
    shared: Rc<RefCell<ProxyShared>>,
    proxy_node: NodeId,
    next_handle: u64,
}

impl Controller {
    /// Creates the proxy process + controller pair. The caller attaches
    /// the returned process to the proxy's node.
    pub fn create(
        proxy_node: NodeId,
        identity_map: HashMap<NodeId, PublicKey>,
    ) -> (Controller, OnionProxy) {
        let shared = Rc::new(RefCell::new(ProxyShared::default()));
        let proxy = OnionProxy::new(shared.clone(), identity_map);
        (
            Controller {
                shared,
                proxy_node,
                next_handle: 1,
            },
            proxy,
        )
    }

    fn enqueue(&mut self, sim: &mut Simulator, cmd: Command) {
        self.shared.borrow_mut().commands.push_back(cmd);
        sim.wake(self.proxy_node);
    }

    /// Requests construction of an explicit circuit through `path`
    /// (first element = entry). Returns immediately; run the simulator
    /// and poll [`Controller::circuit_status`].
    pub fn build_circuit(&mut self, sim: &mut Simulator, path: Vec<NodeId>) -> CircuitHandle {
        let handle = self.next_handle;
        self.next_handle += 1;
        self.shared
            .borrow_mut()
            .circuit_status
            .insert(handle, CircuitStatus::Building);
        self.enqueue(sim, Command::BuildCircuit { handle, path });
        CircuitHandle(handle)
    }

    /// Current status of a circuit.
    pub fn circuit_status(&self, circuit: CircuitHandle) -> CircuitStatus {
        self.shared
            .borrow()
            .circuit_status
            .get(&circuit.0)
            .copied()
            .unwrap_or(CircuitStatus::Failed)
    }

    /// The local policy error that failed a circuit, if any.
    pub fn circuit_error(&self, circuit: CircuitHandle) -> Option<PolicyError> {
        self.shared.borrow().circuit_errors.get(&circuit.0).cloned()
    }

    /// Attaches a stream through `circuit` to `target` (exits from the
    /// circuit's last relay).
    pub fn open_stream(
        &mut self,
        sim: &mut Simulator,
        circuit: CircuitHandle,
        target: NodeId,
    ) -> StreamHandle {
        let handle = self.next_handle;
        self.next_handle += 1;
        self.shared
            .borrow_mut()
            .stream_status
            .insert(handle, StreamStatus::Connecting);
        self.enqueue(
            sim,
            Command::OpenStream {
                handle,
                circuit: circuit.0,
                target,
            },
        );
        StreamHandle(handle)
    }

    /// Current status of a stream.
    pub fn stream_status(&self, stream: StreamHandle) -> StreamStatus {
        self.shared
            .borrow()
            .stream_status
            .get(&stream.0)
            .copied()
            .unwrap_or(StreamStatus::Closed)
    }

    /// Sends application bytes on a stream.
    pub fn send(&mut self, sim: &mut Simulator, stream: StreamHandle, data: Vec<u8>) {
        self.enqueue(
            sim,
            Command::SendData {
                stream: stream.0,
                data,
            },
        );
    }

    /// Drains bytes received on a stream: `(arrival time, data)` pairs
    /// in arrival order.
    pub fn take_received(&mut self, stream: StreamHandle) -> Vec<(SimTime, Vec<u8>)> {
        self.shared
            .borrow_mut()
            .received
            .remove(&stream.0)
            .unwrap_or_default()
    }

    /// Closes a stream (END toward the exit).
    pub fn close_stream(&mut self, sim: &mut Simulator, stream: StreamHandle) {
        self.enqueue(sim, Command::CloseStream { stream: stream.0 });
    }

    /// Tears down a circuit (DESTROY along the path).
    pub fn close_circuit(&mut self, sim: &mut Simulator, circuit: CircuitHandle) {
        self.enqueue(sim, Command::CloseCircuit { circuit: circuit.0 });
    }

    /// Runs the simulator until idle, or — when a deadline is given —
    /// only through events due by the deadline, leaving later ones
    /// queued. With `None` this is exactly [`Simulator::run_until_idle`],
    /// so timeout-free callers keep bit-identical behaviour.
    fn run_bounded(sim: &mut Simulator, deadline: Option<SimTime>) {
        match deadline {
            Some(d) => sim.run_until_idle_or(d),
            None => sim.run_until_idle(),
        };
    }

    /// Convenience: builds a circuit and runs the simulator until the
    /// build settles. Returns true when the circuit is ready.
    pub fn build_and_wait(
        &mut self,
        sim: &mut Simulator,
        path: Vec<NodeId>,
    ) -> Option<CircuitHandle> {
        self.build_and_wait_until(sim, path, None)
    }

    /// [`Controller::build_and_wait`] with an optional deadline: if the
    /// build has not settled by `deadline`, gives up and returns `None`
    /// (the circuit may still be building; close it to be safe).
    pub fn build_and_wait_until(
        &mut self,
        sim: &mut Simulator,
        path: Vec<NodeId>,
        deadline: Option<SimTime>,
    ) -> Option<CircuitHandle> {
        let h = self.build_circuit(sim, path);
        Self::run_bounded(sim, deadline);
        match self.circuit_status(h) {
            CircuitStatus::Ready => Some(h),
            _ => None,
        }
    }

    /// Convenience: attaches a stream and waits for CONNECTED.
    pub fn open_stream_and_wait(
        &mut self,
        sim: &mut Simulator,
        circuit: CircuitHandle,
        target: NodeId,
    ) -> Option<StreamHandle> {
        self.open_stream_and_wait_until(sim, circuit, target, None)
    }

    /// [`Controller::open_stream_and_wait`] with an optional deadline.
    pub fn open_stream_and_wait_until(
        &mut self,
        sim: &mut Simulator,
        circuit: CircuitHandle,
        target: NodeId,
        deadline: Option<SimTime>,
    ) -> Option<StreamHandle> {
        let s = self.open_stream(sim, circuit, target);
        Self::run_bounded(sim, deadline);
        match self.stream_status(s) {
            StreamStatus::Open => Some(s),
            _ => None,
        }
    }

    /// Convenience: one application-layer echo round trip. Sends `data`,
    /// runs until quiescent, and returns the RTT in milliseconds (send
    /// instant → arrival of the echoed copy), or `None` if no echo came
    /// back.
    pub fn echo_roundtrip_ms(
        &mut self,
        sim: &mut Simulator,
        stream: StreamHandle,
        data: Vec<u8>,
    ) -> Option<f64> {
        let sent_at = sim.now();
        self.send(sim, stream, data);
        sim.run_until_idle();
        let received = self.take_received(stream);
        let (arrival, _) = received.into_iter().next_back()?;
        Some((arrival - sent_at).as_millis_f64())
    }

    /// [`Controller::echo_roundtrip_ms`] with an optional deadline, and
    /// robust to late echoes: only a reply whose bytes match `data` and
    /// which arrived after this send counts. A stalled echo from an
    /// earlier, timed-out probe draining into this window is discarded
    /// instead of being mistaken for a fast reply.
    pub fn echo_roundtrip_ms_until(
        &mut self,
        sim: &mut Simulator,
        stream: StreamHandle,
        data: Vec<u8>,
        deadline: Option<SimTime>,
    ) -> Option<f64> {
        let sent_at = sim.now();
        let expect = data.clone();
        self.send(sim, stream, data);
        Self::run_bounded(sim, deadline);
        self.take_received(stream)
            .into_iter()
            .filter(|(arrival, echoed)| *arrival >= sent_at && *echoed == expect)
            .map(|(arrival, _)| (arrival - sent_at).as_millis_f64())
            .next_back()
    }
}
