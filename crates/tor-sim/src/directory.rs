//! Relay descriptors and the consensus.
//!
//! A trimmed-down version of what the Tor directory authorities publish:
//! per-relay identity keys, flags, bandwidth weights, and exit policies.
//! The paper's deanonymization evaluation (§5.1.1) distinguishes
//! uniform-random relay selection ("traditional Tor") from
//! bandwidth-weighted selection; both selectors live here.

use netsim::NodeId;
use onion_crypto::PublicKey;
use rand::Rng;

/// Relay status flags (the subset the experiments need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelayFlags {
    pub running: bool,
    pub guard: bool,
    pub exit: bool,
}

/// One relay's descriptor as published to the directory.
#[derive(Debug, Clone)]
pub struct RelayDescriptor {
    /// The relay's node in the simulator.
    pub node: NodeId,
    /// ntor identity public key.
    pub identity: PublicKey,
    /// Self-measured bandwidth (arbitrary units; selection weight).
    pub bandwidth: f64,
    pub flags: RelayFlags,
    pub nickname: String,
    /// IPv4 address (drives /24 coverage analysis).
    pub ip: [u8; 4],
    /// Reverse-DNS name, if the relay's address has one (§5.3).
    pub rdns: Option<String>,
}

impl RelayDescriptor {
    /// The /24 prefix of this relay's address.
    pub fn slash24(&self) -> [u8; 3] {
        [self.ip[0], self.ip[1], self.ip[2]]
    }

    /// The /16 prefix (Tor's path-diversity constraint unit).
    pub fn slash16(&self) -> [u8; 2] {
        [self.ip[0], self.ip[1]]
    }
}

/// The network consensus: every published descriptor.
#[derive(Debug, Clone, Default)]
pub struct Consensus {
    relays: Vec<RelayDescriptor>,
}

impl Consensus {
    pub fn new() -> Consensus {
        Consensus::default()
    }

    pub fn publish(&mut self, descriptor: RelayDescriptor) {
        self.relays.push(descriptor);
    }

    pub fn relays(&self) -> &[RelayDescriptor] {
        &self.relays
    }

    pub fn len(&self) -> usize {
        self.relays.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// Finds a descriptor by node id.
    pub fn descriptor(&self, node: NodeId) -> Option<&RelayDescriptor> {
        self.relays.iter().find(|r| r.node == node)
    }

    /// Marks a relay up or down, as a directory refresh would. Returns
    /// false when the relay is not in the consensus.
    pub fn set_running(&mut self, node: NodeId, running: bool) -> bool {
        match self.relays.iter_mut().find(|r| r.node == node) {
            Some(r) => {
                r.flags.running = running;
                true
            }
            None => false,
        }
    }

    /// Uniform-random running relay ("traditional Tor" in §5.1.1).
    pub fn pick_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&RelayDescriptor> {
        let running: Vec<&RelayDescriptor> =
            self.relays.iter().filter(|r| r.flags.running).collect();
        if running.is_empty() {
            return None;
        }
        Some(running[rng.gen_range(0..running.len())])
    }

    /// Bandwidth-weighted random running relay (how Tor actually picks).
    pub fn pick_weighted<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&RelayDescriptor> {
        let running: Vec<&RelayDescriptor> =
            self.relays.iter().filter(|r| r.flags.running).collect();
        if running.is_empty() {
            return None;
        }
        let total: f64 = running.iter().map(|r| r.bandwidth).sum();
        if total <= 0.0 {
            return Some(running[rng.gen_range(0..running.len())]);
        }
        let mut target = rng.gen_range(0.0..total);
        for r in &running {
            target -= r.bandwidth;
            if target <= 0.0 {
                return Some(r);
            }
        }
        running.last().copied()
    }

    /// Builds a default Tor circuit path the way a stock client does:
    /// a bandwidth-weighted guard (Guard flag required), a weighted
    /// middle, and a weighted exit (Exit flag required), all distinct
    /// and from distinct /16s. Returns `None` when the consensus can't
    /// satisfy the constraints.
    pub fn default_path<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Vec<NodeId>> {
        let running: Vec<&RelayDescriptor> =
            self.relays.iter().filter(|r| r.flags.running).collect();
        let pick_weighted_from = |pool: &[&RelayDescriptor], rng: &mut R| -> Option<NodeId> {
            if pool.is_empty() {
                return None;
            }
            let total: f64 = pool.iter().map(|r| r.bandwidth).sum();
            if total <= 0.0 {
                return Some(pool[rng.gen_range(0..pool.len())].node);
            }
            let mut t = rng.gen_range(0.0..total);
            for r in pool {
                t -= r.bandwidth;
                if t <= 0.0 {
                    return Some(r.node);
                }
            }
            pool.last().map(|r| r.node)
        };
        for _ in 0..200 {
            let exits: Vec<&RelayDescriptor> =
                running.iter().copied().filter(|r| r.flags.exit).collect();
            let exit = pick_weighted_from(&exits, rng)?;
            let exit_desc = self.descriptor(exit)?;
            let guards: Vec<&RelayDescriptor> = running
                .iter()
                .copied()
                .filter(|r| r.flags.guard && r.node != exit && r.slash16() != exit_desc.slash16())
                .collect();
            let Some(guard) = pick_weighted_from(&guards, rng) else {
                continue;
            };
            let guard_desc = self.descriptor(guard)?;
            let middles: Vec<&RelayDescriptor> = running
                .iter()
                .copied()
                .filter(|r| {
                    r.node != exit
                        && r.node != guard
                        && r.slash16() != exit_desc.slash16()
                        && r.slash16() != guard_desc.slash16()
                })
                .collect();
            if let Some(middle) = pick_weighted_from(&middles, rng) {
                return Some(vec![guard, middle, exit]);
            }
        }
        None
    }

    /// Samples a `len`-hop path of distinct running relays, uniformly at
    /// random, honouring the /16-diversity constraint when
    /// `distinct_slash16` is set.
    pub fn sample_path<R: Rng + ?Sized>(
        &self,
        len: usize,
        distinct_slash16: bool,
        rng: &mut R,
    ) -> Option<Vec<NodeId>> {
        let mut path: Vec<&RelayDescriptor> = Vec::with_capacity(len);
        let mut attempts = 0;
        while path.len() < len {
            attempts += 1;
            if attempts > len * 200 {
                return None; // not enough diverse relays
            }
            let cand = self.pick_uniform(rng)?;
            if path.iter().any(|p| p.node == cand.node) {
                continue;
            }
            if distinct_slash16 && path.iter().any(|p| p.slash16() == cand.slash16()) {
                continue;
            }
            path.push(cand);
        }
        Some(path.into_iter().map(|r| r.node).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn desc(i: u32, bw: f64, running: bool) -> RelayDescriptor {
        RelayDescriptor {
            node: NodeId(i),
            identity: [i as u8; 32],
            bandwidth: bw,
            flags: RelayFlags {
                running,
                guard: true,
                exit: false,
            },
            nickname: format!("relay{i}"),
            ip: [10, (i >> 8) as u8, i as u8, 1],
            rdns: None,
        }
    }

    fn consensus(n: u32) -> Consensus {
        let mut c = Consensus::new();
        for i in 0..n {
            c.publish(desc(i, (i + 1) as f64, true));
        }
        c
    }

    #[test]
    fn uniform_pick_covers_all_relays() {
        let c = consensus(10);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(c.pick_uniform(&mut rng).unwrap().node);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn weighted_pick_prefers_high_bandwidth() {
        let mut c = Consensus::new();
        c.publish(desc(0, 1.0, true));
        c.publish(desc(1, 99.0, true));
        let mut rng = SmallRng::seed_from_u64(5);
        let heavy = (0..2000)
            .filter(|_| c.pick_weighted(&mut rng).unwrap().node == NodeId(1))
            .count();
        let frac = heavy as f64 / 2000.0;
        assert!(frac > 0.95, "heavy fraction {frac}");
    }

    #[test]
    fn non_running_relays_never_picked() {
        let mut c = consensus(3);
        c.publish(desc(99, 1000.0, false));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            assert_ne!(c.pick_uniform(&mut rng).unwrap().node, NodeId(99));
            assert_ne!(c.pick_weighted(&mut rng).unwrap().node, NodeId(99));
        }
    }

    #[test]
    fn sampled_paths_have_distinct_relays() {
        let c = consensus(20);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            let path = c.sample_path(3, false, &mut rng).unwrap();
            assert_eq!(path.len(), 3);
            let set: std::collections::HashSet<_> = path.iter().collect();
            assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn slash16_constraint_respected() {
        // Two relays share 10.0.x.x; path of 2 with constraint must mix.
        let mut c = Consensus::new();
        for i in 0..2u32 {
            let mut d = desc(i, 1.0, true);
            d.ip = [10, 0, i as u8, 1];
            c.publish(d);
        }
        let mut d = desc(2, 1.0, true);
        d.ip = [10, 1, 0, 1];
        c.publish(d);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let path = c.sample_path(2, true, &mut rng).unwrap();
            let a = c.descriptor(path[0]).unwrap().slash16();
            let b = c.descriptor(path[1]).unwrap().slash16();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn default_path_respects_flags_and_diversity() {
        let mut c = Consensus::new();
        for i in 0..30u32 {
            let mut d = desc(i, (i % 5 + 1) as f64, true);
            d.flags.guard = i % 2 == 0;
            d.flags.exit = i % 3 == 0;
            d.ip = [10, (i % 10) as u8, i as u8, 1];
            c.publish(d);
        }
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            let path = c.default_path(&mut rng).expect("path exists");
            assert_eq!(path.len(), 3);
            let descs: Vec<_> = path.iter().map(|&n| c.descriptor(n).unwrap()).collect();
            assert!(descs[0].flags.guard, "entry lacks Guard flag");
            assert!(descs[2].flags.exit, "exit lacks Exit flag");
            // Distinct relays and distinct /16s.
            let set: std::collections::HashSet<_> = path.iter().collect();
            assert_eq!(set.len(), 3);
            let s16: std::collections::HashSet<_> = descs.iter().map(|d| d.slash16()).collect();
            assert_eq!(s16.len(), 3);
        }
    }

    #[test]
    fn default_path_none_without_exits() {
        let mut c = Consensus::new();
        for i in 0..5u32 {
            let mut d = desc(i, 1.0, true);
            d.flags.exit = false;
            c.publish(d);
        }
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(c.default_path(&mut rng).is_none());
    }

    #[test]
    fn impossible_path_returns_none() {
        let c = consensus(2);
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(c.sample_path(3, false, &mut rng).is_none());
        assert!(Consensus::new().pick_uniform(&mut rng).is_none());
    }

    #[test]
    fn prefix_helpers() {
        let d = desc(0x0102, 1.0, true);
        assert_eq!(d.ip, [10, 1, 2, 1]);
        assert_eq!(d.slash24(), [10, 1, 2]);
        assert_eq!(d.slash16(), [10, 1]);
    }
}
