//! Assembling runnable Tor networks.
//!
//! [`TorNetworkBuilder`] wires an underlay, a relay population, and the
//! paper's four-process measurement host (echo client/proxy `s`, echo
//! server `d`, local relays `w` and `z`, §3.3) into a [`TorNetwork`].
//! Two scenarios mirror §4:
//!
//! * [`TorNetworkBuilder::testbed`] — the PlanetLab-like validation
//!   network: 31 relays in distinct cities with wide geographic
//!   coverage, one AS each, ~65% protocol-neutral networks and the rest
//!   split between ICMP-deprioritizing and TCP-shaping policies (the
//!   Fig. 5 anomaly mix).
//! * [`TorNetworkBuilder::live`] — a live-Tor-like network: hundreds of
//!   relays with the US/EU geographic skew, residential/datacenter AS
//!   mix, Pareto bandwidth weights, rDNS names, and occasional
//!   Tor-specific shaping.

use crate::churn::ChurnConfig;
use crate::control::Controller;
use crate::directory::{Consensus, RelayDescriptor, RelayFlags};
use crate::echo::EchoServer;
use crate::metrics::RelayMetrics;
use crate::relay::{Relay, RelayConfig, RelayFaultProfile};
use geo::{GeoPoint, HostnameGenerator, World};
use netsim::{
    AsId, AsProfile, FaultPlan, NodeId, ProtocolPolicy, SimTime, Simulator, TrafficClass, Underlay,
    UnderlayConfig,
};
use obs::{Obs, Value};
use onion_crypto::KeyPair;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Draws from an exponential distribution with the given mean.
fn sample_exp(rng: &mut SmallRng, mean: f64) -> f64 {
    -rng.gen_range(1e-12..1.0f64).ln() * mean
}

/// One uniform draw in `[0, 1)` from a SplitMix64-style keyed hash —
/// the same generator family the fault plan uses, so churn decisions
/// never consume the simulation RNG.
fn keyed_u01(seed: u64, n: u64) -> f64 {
    let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(n);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Which §4 scenario to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Testbed,
    Live,
}

/// Builder for [`TorNetwork`].
#[derive(Debug, Clone)]
pub struct TorNetworkBuilder {
    seed: u64,
    scenario: Scenario,
    n_relays: usize,
    /// Fraction of ASes that treat protocols identically (§4.3: ~65%).
    neutral_frac: f64,
    /// Of the discriminating remainder, fraction that deprioritizes
    /// ICMP (vs shaping TCP/Tor).
    icmp_anomaly_frac: f64,
    underlay_config: UnderlayConfig,
    fault_plan: FaultPlan,
    relay_faults: RelayFaultProfile,
    /// Vantage hosts beyond the primary measurement host (0 = the
    /// classic single-vantage paper setup).
    extra_vantages: usize,
    /// Observability handle threaded into the simulator and exposed on
    /// the built network. Defaults to [`Obs::off`].
    observability: Obs,
}

impl TorNetworkBuilder {
    /// The PlanetLab-like ground-truth testbed of §4.1 (default 31
    /// relays).
    pub fn testbed(seed: u64) -> TorNetworkBuilder {
        TorNetworkBuilder {
            seed,
            scenario: Scenario::Testbed,
            n_relays: 31,
            neutral_frac: 0.65,
            icmp_anomaly_frac: 0.6,
            underlay_config: UnderlayConfig::default(),
            fault_plan: FaultPlan::disabled(),
            relay_faults: RelayFaultProfile::disabled(),
            extra_vantages: 0,
            observability: Obs::off(),
        }
    }

    /// A live-Tor-like network of `n_relays` relays (§4.5).
    pub fn live(seed: u64, n_relays: usize) -> TorNetworkBuilder {
        TorNetworkBuilder {
            seed,
            scenario: Scenario::Live,
            n_relays,
            neutral_frac: 0.70,
            icmp_anomaly_frac: 0.6,
            underlay_config: UnderlayConfig::default(),
            fault_plan: FaultPlan::disabled(),
            relay_faults: RelayFaultProfile::disabled(),
            extra_vantages: 0,
            observability: Obs::off(),
        }
    }

    /// Provisions `k` vantage pairs in total: the primary measurement
    /// host plus `k − 1` extra hosts, each with its own onion proxy,
    /// local relay pair `(w_i, z_i)`, and echo server (§6: "multiple
    /// instances of Ting can run in parallel"). `k = 1` (the default)
    /// is bit-identical to a builder that never called this: the extra
    /// hosts draw from the seed RNG only after every existing draw.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn vantages(mut self, k: usize) -> TorNetworkBuilder {
        assert!(k >= 1, "at least the primary vantage is required");
        self.extra_vantages = k - 1;
        self
    }

    /// Overrides the relay count.
    pub fn relays(mut self, n: usize) -> TorNetworkBuilder {
        self.n_relays = n;
        self
    }

    /// Overrides the protocol-neutral AS fraction.
    pub fn neutral_fraction(mut self, f: f64) -> TorNetworkBuilder {
        self.neutral_frac = f;
        self
    }

    /// Overrides underlay model constants.
    pub fn underlay_config(mut self, cfg: UnderlayConfig) -> TorNetworkBuilder {
        self.underlay_config = cfg;
        self
    }

    /// Installs an underlay fault plan (link loss, delay spikes, stalls,
    /// crash windows). Disabled by default.
    pub fn fault_plan(mut self, plan: FaultPlan) -> TorNetworkBuilder {
        self.fault_plan = plan;
        self
    }

    /// Gives every measurable relay a fault profile (EXTEND2 refusal,
    /// overload cell shedding). Each relay derives its own draw seed
    /// from the profile's, so fault streams are independent. The local
    /// relays `w`/`z` stay fault-free — they are the measurement host's
    /// own, as in the paper.
    pub fn relay_faults(mut self, profile: RelayFaultProfile) -> TorNetworkBuilder {
        self.relay_faults = profile;
        self
    }

    /// Attaches an observability handle: the simulator's dispatch loop
    /// and the network-level lifecycle methods (crash, revive, churn,
    /// consensus refresh) record into it. Keep a clone to read the
    /// registry, or use [`TorNetwork::obs`]. The default [`Obs::off`]
    /// records nothing and is bit-identical to an uninstrumented build.
    pub fn observability(mut self, obs: Obs) -> TorNetworkBuilder {
        self.observability = obs;
        self
    }

    /// Builds the network.
    pub fn build(self) -> TorNetwork {
        let world = World::new();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut underlay = Underlay::new(self.underlay_config, self.seed ^ 0x7ea5);

        // ── Measurement host: one well-connected AS, four nodes. ──
        let host_city = world.city("Washington DC").expect("city exists");
        let mut host_profile = AsProfile::datacenter("measurement-host", host_city.location);
        host_profile.access_delay_ms = (0.02, 0.05);
        host_profile.jitter_mean_ms = 0.05;
        let host_as = underlay.add_as(host_profile);
        let host_node = |u: &mut Underlay, rng: &mut SmallRng, last: u8| {
            let loc = host_city.location;
            u.add_node_in(host_as, loc, [192, 0, 2, last], rng)
        };
        let proxy_idx = host_node(&mut underlay, &mut rng, 1);
        let w_idx = host_node(&mut underlay, &mut rng, 2);
        let z_idx = host_node(&mut underlay, &mut rng, 3);
        let echo_idx = host_node(&mut underlay, &mut rng, 4);

        // ── Relay population. ──
        let mut relay_nodes: Vec<NodeId> = Vec::with_capacity(self.n_relays);
        let mut relay_keys: Vec<KeyPair> = Vec::with_capacity(self.n_relays);
        let mut relay_configs: Vec<RelayConfig> = Vec::with_capacity(self.n_relays);
        let mut relay_ips: Vec<[u8; 4]> = Vec::with_capacity(self.n_relays);
        let mut relay_residential: Vec<bool> = Vec::with_capacity(self.n_relays);

        let placements: Vec<(String, GeoPoint, bool)> = match self.scenario {
            Scenario::Testbed => {
                // Distinct cities, uniform coverage, all institutional
                // (datacenter-like) hosts — PlanetLab sites.
                assert!(
                    self.n_relays <= world.cities().len(),
                    "testbed limited to one relay per city"
                );
                world
                    .sample_distinct_cities(&mut rng, self.n_relays)
                    .into_iter()
                    .map(|c| (c.name.to_string(), c.location, false))
                    .collect()
            }
            Scenario::Live => (0..self.n_relays)
                .map(|_| {
                    let (city, loc) = world.sample_location(&mut rng);
                    // §5.3: ~61% of (named) relays are residential.
                    let residential = rng.gen_bool(0.61);
                    (city.name.to_string(), loc, residential)
                })
                .collect(),
        };

        // Group relays into ASes: testbed = one AS per site; live = up
        // to a few relays share an (city, kind) AS.
        let mut live_as_pool: HashMap<(String, bool), Vec<AsId>> = HashMap::new();
        for (i, (city_name, loc, residential)) in placements.iter().enumerate() {
            let as_id = match self.scenario {
                Scenario::Testbed => {
                    let profile =
                        self.as_profile_for(format!("pl-{city_name}"), *loc, false, &mut rng);
                    underlay.add_as(profile)
                }
                Scenario::Live => {
                    let key = (city_name.clone(), *residential);
                    let pool = live_as_pool.entry(key).or_default();
                    // ~4 relays per AS on average before opening another.
                    if pool.is_empty() || rng.gen_bool(0.25) {
                        let profile = self.as_profile_for(
                            format!(
                                "{}-{}-{}",
                                if *residential { "isp" } else { "dc" },
                                city_name,
                                pool.len()
                            ),
                            *loc,
                            *residential,
                            &mut rng,
                        );
                        let id = underlay.add_as(profile);
                        pool.push(id);
                        id
                    } else {
                        pool[rng.gen_range(0..pool.len())]
                    }
                }
            };
            let as_index = as_id.0 as usize;
            let ip = [
                10u8.wrapping_add((as_index >> 8) as u8),
                (as_index & 0xff) as u8,
                rng.gen(),
                rng.gen_range(1..=254u8),
            ];
            let node_idx = underlay.add_node_in(as_id, *loc, ip, &mut rng);
            // Node indices: 0..=3 are the host; relays follow.
            assert_eq!(node_idx, 4 + i);
            relay_nodes.push(NodeId(node_idx as u32));
            relay_ips.push(ip);
            relay_residential.push(*residential);

            let mut secret = [0u8; 32];
            rng.fill(&mut secret);
            relay_keys.push(KeyPair::from_secret(secret));
            relay_configs.push(RelayConfig {
                // §4.3: minimum forwarding delays land in 0–3 ms and are
                // dominated by symmetric crypto; the floor per relay is
                // sub-millisecond on anything modern.
                base_proc_ms: rng.gen_range(0.08..0.8),
                busy_prob: rng.gen_range(0.15..0.5),
                busy_mean_ms: rng.gen_range(1.0..6.0),
            });
        }

        // Local relays w and z: same config class as a quiet relay.
        let mut wsec = [0u8; 32];
        rng.fill(&mut wsec);
        let w_key = KeyPair::from_secret(wsec);
        let mut zsec = [0u8; 32];
        rng.fill(&mut zsec);
        let z_key = KeyPair::from_secret(zsec);
        let local_config = RelayConfig {
            base_proc_ms: 0.15,
            busy_prob: 0.05,
            busy_mean_ms: 1.0,
        };

        // ── Identity map & consensus. ──
        let mut identity_map: HashMap<NodeId, onion_crypto::PublicKey> = HashMap::new();
        identity_map.insert(NodeId(w_idx as u32), w_key.public);
        identity_map.insert(NodeId(z_idx as u32), z_key.public);
        for (node, key) in relay_nodes.iter().zip(&relay_keys) {
            identity_map.insert(*node, key.public);
        }

        let hostname_gen = HostnameGenerator::default();
        let mut consensus = Consensus::new();
        for (i, node) in relay_nodes.iter().enumerate() {
            // Pareto-ish bandwidth weights (heavy-tailed, like Tor's).
            let u: f64 = rng.gen_range(1e-6..1.0);
            let bandwidth = 100.0 * u.powf(-1.0 / 1.3);
            let rdns = if relay_residential[i] {
                // Residential relays keep ISP-style names.
                Some(
                    hostname_gen
                        .generate(relay_ips[i], &mut rng)
                        .unwrap_or_else(|| format!("host{i}.example.net")),
                )
            } else {
                hostname_gen.generate(relay_ips[i], &mut rng)
            };
            consensus.publish(RelayDescriptor {
                node: *node,
                identity: relay_keys[i].public,
                bandwidth,
                flags: RelayFlags {
                    running: true,
                    guard: true,
                    exit: rng.gen_bool(0.3),
                },
                nickname: format!("relay{i}"),
                ip: relay_ips[i],
                rdns,
            });
        }

        // ── Extra vantage hosts (multi-vantage parallel scanning). ──
        // Provisioned strictly after every seed-era RNG draw above, so
        // a builder with no extra vantages is bit-identical to one that
        // never heard of vantage pools: the extra draws only happen
        // when extra hosts actually exist.
        struct VantageSeed {
            proxy_idx: usize,
            w_idx: usize,
            z_idx: usize,
            echo_idx: usize,
            w_key: KeyPair,
            z_key: KeyPair,
        }
        let mut vantage_seeds: Vec<VantageSeed> = Vec::with_capacity(self.extra_vantages);
        for j in 0..self.extra_vantages {
            let (city, loc) = world.sample_location(&mut rng);
            let mut profile =
                AsProfile::datacenter(format!("vantage-{}-{}", j + 1, city.name), loc);
            profile.access_delay_ms = (0.02, 0.05);
            profile.jitter_mean_ms = 0.05;
            let vantage_as = underlay.add_as(profile);
            let j8 = (j as u8).wrapping_add(1);
            let host = |u: &mut Underlay, rng: &mut SmallRng, last: u8| {
                u.add_node_in(vantage_as, loc, [198, 18, j8, last], rng)
            };
            let proxy_idx = host(&mut underlay, &mut rng, 1);
            let w_idx = host(&mut underlay, &mut rng, 2);
            let z_idx = host(&mut underlay, &mut rng, 3);
            let echo_idx = host(&mut underlay, &mut rng, 4);
            let mut wsec = [0u8; 32];
            rng.fill(&mut wsec);
            let mut zsec = [0u8; 32];
            rng.fill(&mut zsec);
            vantage_seeds.push(VantageSeed {
                proxy_idx,
                w_idx,
                z_idx,
                echo_idx,
                w_key: KeyPair::from_secret(wsec),
                z_key: KeyPair::from_secret(zsec),
            });
        }

        // ── Simulator + processes (same order as underlay nodes). ──
        let mut sim = Simulator::new(underlay, self.seed ^ 0xc0de);
        sim.set_fault_plan(self.fault_plan);
        sim.set_obs(self.observability.clone());
        let (controller, proxy_process) =
            Controller::create(NodeId(proxy_idx as u32), identity_map);
        let proxy = sim.add_process(Box::new(proxy_process));
        let w_metrics = RelayMetrics::new();
        let z_metrics = RelayMetrics::new();
        let local_w = sim.add_process(Box::new(
            Relay::new(w_key, local_config).with_metrics(w_metrics.clone()),
        ));
        let local_z = sim.add_process(Box::new(
            Relay::new(z_key, local_config).with_metrics(z_metrics.clone()),
        ));
        let echo_server = sim.add_process(Box::new(EchoServer::new()));
        let mut relay_metrics = Vec::with_capacity(relay_keys.len());
        for (i, (key, config)) in relay_keys.iter().zip(&relay_configs).enumerate() {
            let metrics = RelayMetrics::new();
            relay_metrics.push(metrics.clone());
            sim.add_process(Box::new(
                Relay::new(*key, *config)
                    .with_metrics(metrics)
                    .with_faults(self.relay_faults.for_relay(i as u64)),
            ));
        }
        debug_assert_eq!(proxy.index(), proxy_idx);
        debug_assert_eq!(local_w.index(), w_idx);
        debug_assert_eq!(local_z.index(), z_idx);
        debug_assert_eq!(echo_server.index(), echo_idx);

        // Extra vantage processes follow the relays, mirroring the
        // primary host's four-process layout.
        let mut extra_vantages = Vec::with_capacity(vantage_seeds.len());
        for seed in vantage_seeds {
            let mut map: HashMap<NodeId, onion_crypto::PublicKey> = HashMap::new();
            map.insert(NodeId(seed.w_idx as u32), seed.w_key.public);
            map.insert(NodeId(seed.z_idx as u32), seed.z_key.public);
            for (node, key) in relay_nodes.iter().zip(&relay_keys) {
                map.insert(*node, key.public);
            }
            let (v_controller, v_proxy_process) =
                Controller::create(NodeId(seed.proxy_idx as u32), map);
            let v_proxy = sim.add_process(Box::new(v_proxy_process));
            let vw_metrics = RelayMetrics::new();
            let vz_metrics = RelayMetrics::new();
            let vw = sim.add_process(Box::new(
                Relay::new(seed.w_key, local_config).with_metrics(vw_metrics.clone()),
            ));
            let vz = sim.add_process(Box::new(
                Relay::new(seed.z_key, local_config).with_metrics(vz_metrics.clone()),
            ));
            let v_echo = sim.add_process(Box::new(EchoServer::new()));
            debug_assert_eq!(v_proxy.index(), seed.proxy_idx);
            debug_assert_eq!(vw.index(), seed.w_idx);
            debug_assert_eq!(vz.index(), seed.z_idx);
            debug_assert_eq!(v_echo.index(), seed.echo_idx);
            extra_vantages.push(Vantage {
                proxy: v_proxy,
                w: vw,
                z: vz,
                echo: v_echo,
                controller: v_controller,
                w_metrics: vw_metrics,
                z_metrics: vz_metrics,
            });
        }

        TorNetwork {
            sim,
            consensus,
            controller,
            relays: relay_nodes,
            relay_configs,
            relay_metrics,
            w_metrics,
            z_metrics,
            proxy,
            local_w,
            local_z,
            echo_server,
            extra_vantages,
        }
    }

    /// Draws an AS profile with the configured policy mix.
    fn as_profile_for(
        &self,
        name: String,
        hub: GeoPoint,
        residential: bool,
        rng: &mut SmallRng,
    ) -> AsProfile {
        let mut profile = if residential {
            AsProfile::residential(name, hub)
        } else {
            AsProfile::datacenter(name, hub)
        };
        profile.diurnal_phase_h = rng.gen_range(0.0..24.0);
        if !rng.gen_bool(self.neutral_frac) {
            // Anomaly magnitudes: a one-way skew of δ shifts a pair's
            // ping RTT by ~δ but a §4.3 forwarding-delay estimate by
            // 2δ — Fig. 5 shows F anomalies of tens of ms while Fig. 3
            // stays 91%-within-10%, which bounds δ to roughly ≤ 15 ms
            // with a heavier tail on a few networks.
            let magnitude = (1.0 + sample_exp(rng, 3.0)).min(12.0);
            profile.policy = if rng.gen_bool(self.icmp_anomaly_frac) {
                ProtocolPolicy::icmp_deprioritized(magnitude)
            } else {
                ProtocolPolicy::tcp_shaped(magnitude * 0.7)
            };
        } else if self.scenario == Scenario::Live && rng.gen_bool(0.05) {
            // A few networks shape specifically Tor (§4.5 speculates
            // international Tor traffic is treated differently).
            profile.policy = ProtocolPolicy::tor_shaped(rng.gen_range(2.0..12.0));
        }
        profile
    }
}

/// One measurement vantage beyond the primary host: an onion proxy
/// `s_i`, two local relays `w_i`/`z_i`, an echo server `d_i`, and the
/// controller that drives them. Each vantage owns its circuits, so K
/// vantages can have K measurements in flight concurrently.
pub struct Vantage {
    /// `s_i`: the vantage's onion proxy + echo client.
    pub proxy: NodeId,
    /// `w_i`: the vantage's first local relay.
    pub w: NodeId,
    /// `z_i`: the vantage's second local relay.
    pub z: NodeId,
    /// `d_i`: the vantage's echo server.
    pub echo: NodeId,
    /// Stem-like controller for this vantage's proxy.
    pub controller: Controller,
    pub w_metrics: RelayMetrics,
    pub z_metrics: RelayMetrics,
}

/// A fully assembled simulated Tor deployment.
pub struct TorNetwork {
    pub sim: Simulator,
    pub consensus: Consensus,
    pub controller: Controller,
    /// The measurable relay population (excludes `w`/`z`).
    pub relays: Vec<NodeId>,
    /// The performance parameters each relay was built with,
    /// index-aligned with `relays`. Ground truth for per-relay
    /// forwarding-delay attribution (see
    /// [`RelayConfig::expected_forwarding_ms`]).
    pub relay_configs: Vec<RelayConfig>,
    /// Per-relay observability handles, index-aligned with `relays`.
    pub relay_metrics: Vec<RelayMetrics>,
    /// Metrics for the local relays.
    pub w_metrics: RelayMetrics,
    pub z_metrics: RelayMetrics,
    /// `s`: the onion proxy + echo client.
    pub proxy: NodeId,
    /// `w`: first local relay.
    pub local_w: NodeId,
    /// `z`: second local relay.
    pub local_z: NodeId,
    /// `d`: the echo server.
    pub echo_server: NodeId,
    /// Vantage hosts beyond the primary (see
    /// [`TorNetworkBuilder::vantages`]); empty in the classic
    /// single-vantage setup.
    pub extra_vantages: Vec<Vantage>,
}

impl TorNetwork {
    /// The observability handle attached at build time (the disabled
    /// handle when none was).
    pub fn obs(&self) -> &Obs {
        self.sim.obs()
    }

    /// The build-time performance parameters of a measurable relay
    /// (`None` for non-relay nodes and the local `w`/`z` pairs).
    pub fn relay_config(&self, node: NodeId) -> Option<&RelayConfig> {
        let i = self.relays.iter().position(|&n| n == node)?;
        Some(&self.relay_configs[i])
    }

    /// Publishes aggregate relay-layer totals (cells processed,
    /// forwarded, dropped, EXTEND2 refusals, circuits created and
    /// destroyed, streams opened) into the observability registry as
    /// gauges, summed over every measurable relay plus the local
    /// `w`/`z` pairs of all vantages. Call before exporting; repeated
    /// calls overwrite. A no-op when observability is off.
    pub fn publish_relay_totals(&self) {
        let obs = self.sim.obs();
        if !obs.is_enabled() {
            return;
        }
        let mut totals = [0u64; 7];
        let mut add = |m: &RelayMetrics| {
            let s = m.snapshot();
            totals[0] += s.cells_processed;
            totals[1] += s.cells_forwarded;
            totals[2] += s.cells_dropped;
            totals[3] += s.extends_refused;
            totals[4] += s.circuits_created;
            totals[5] += s.circuits_destroyed;
            totals[6] += s.streams_opened;
        };
        for m in &self.relay_metrics {
            add(m);
        }
        add(&self.w_metrics);
        add(&self.z_metrics);
        for v in &self.extra_vantages {
            add(&v.w_metrics);
            add(&v.z_metrics);
        }
        let names = [
            "tor.relay.cells_processed",
            "tor.relay.cells_forwarded",
            "tor.relay.cells_dropped",
            "tor.relay.extends_refused",
            "tor.relay.circuits_created",
            "tor.relay.circuits_destroyed",
            "tor.relay.streams_opened",
        ];
        for (name, total) in names.iter().zip(totals) {
            obs.set_gauge(name, total as i64);
        }
    }

    /// Total vantage pairs available: the primary host plus extras.
    pub fn vantage_count(&self) -> usize {
        1 + self.extra_vantages.len()
    }

    /// The `(w_i, z_i, d_i)` endpoints of vantage `i` (0 = primary).
    pub fn vantage_endpoints(&self, i: usize) -> (NodeId, NodeId, NodeId) {
        if i == 0 {
            (self.local_w, self.local_z, self.echo_server)
        } else {
            let v = &self.extra_vantages[i - 1];
            (v.w, v.z, v.echo)
        }
    }

    /// Split-borrows the simulator together with vantage `i`'s
    /// controller and endpoints — the shape an interleaved measurement
    /// driver needs to advance one vantage's state machine.
    pub fn vantage_parts(
        &mut self,
        i: usize,
    ) -> (&mut Simulator, &mut Controller, NodeId, NodeId, NodeId) {
        if i == 0 {
            (
                &mut self.sim,
                &mut self.controller,
                self.local_w,
                self.local_z,
                self.echo_server,
            )
        } else {
            let v = &mut self.extra_vantages[i - 1];
            (&mut self.sim, &mut v.controller, v.w, v.z, v.echo)
        }
    }
    /// Ground truth: the underlay's base Tor-class RTT between two relay
    /// nodes (what Ting is trying to estimate).
    pub fn true_rtt_ms(&mut self, a: NodeId, b: NodeId) -> f64 {
        self.sim
            .underlay_mut()
            .base_rtt_ms(a.index(), b.index(), TrafficClass::Tor)
    }

    /// The paper's ground-truth procedure: the minimum of `samples`
    /// ICMP pings between two nodes.
    pub fn ping_min_rtt_ms(&mut self, a: NodeId, b: NodeId, samples: usize) -> f64 {
        (0..samples)
            .map(|_| self.sim.ping_rtt_ms(a, b))
            .fold(f64::INFINITY, f64::min)
    }

    /// Crashes a relay at the current sim time — until `until`, or
    /// forever when `None`. The consensus keeps listing it as running
    /// until the next [`TorNetwork::refresh_consensus`]; circuits
    /// through it fail to build in the meantime.
    pub fn crash_relay(&mut self, relay: NodeId, until: Option<SimTime>) {
        let now = self.sim.now();
        self.sim.fault_plan_mut().add_crash(relay, now, until);
        let obs = self.sim.obs();
        obs.inc("tor.relay.crashes");
        if obs.is_tracing() {
            obs.event(
                obs::names::TOR_RELAY_CRASH,
                now.as_nanos(),
                vec![("node", Value::U64(u64::from(relay.0)))],
            );
        }
    }

    /// Reboots a crashed relay: events reach it again immediately. The
    /// consensus keeps listing it as down until the next refresh.
    pub fn revive_relay(&mut self, relay: NodeId) {
        self.sim.fault_plan_mut().clear_crashes(relay);
        let obs = self.sim.obs();
        obs.inc("tor.relay.revives");
        if obs.is_tracing() {
            obs.event(
                obs::names::TOR_RELAY_REVIVE,
                self.sim.now().as_nanos(),
                vec![("node", Value::U64(u64::from(relay.0)))],
            );
        }
    }

    /// Whether the relay is actually reachable right now (ground truth,
    /// as opposed to what the possibly-stale consensus claims).
    pub fn relay_up(&self, relay: NodeId) -> bool {
        !self.sim.fault_plan().node_down(relay, self.sim.now())
    }

    /// Applies `interval_hours` of relay churn: each currently-up relay
    /// departs with probability `daily_departure_rate · interval/24h`
    /// (the Fig. 18 population model), crashing at the current sim time.
    /// Departure draws come from a keyed hash over `(seed, relay
    /// index)`, never the simulation RNG. Returns the departed relays.
    ///
    /// The consensus does **not** see departures until the next
    /// [`TorNetwork::refresh_consensus`] — the directory-staleness
    /// window during which a scanner keeps picking dead relays and its
    /// circuit builds time out.
    pub fn churn_step(
        &mut self,
        churn: &ChurnConfig,
        interval_hours: f64,
        seed: u64,
    ) -> Vec<NodeId> {
        let p = (churn.daily_departure_rate * interval_hours / 24.0).clamp(0.0, 1.0);
        let now = self.sim.now();
        let departed: Vec<NodeId> = self
            .relays
            .iter()
            .enumerate()
            .filter(|(i, &node)| {
                !self.sim.fault_plan().node_down(node, now) && keyed_u01(seed, *i as u64) < p
            })
            .map(|(_, &node)| node)
            .collect();
        for &node in &departed {
            self.sim.fault_plan_mut().add_crash(node, now, None);
        }
        let obs = self.sim.obs();
        obs.add("tor.churn.departures", departed.len() as u64);
        if obs.is_tracing() {
            for &node in &departed {
                obs.event(
                    obs::names::TOR_CHURN_DEPARTED,
                    now.as_nanos(),
                    vec![("node", Value::U64(u64::from(node.0)))],
                );
            }
        }
        departed
    }

    /// Publishes a fresh consensus: every relay's Running flag is synced
    /// to its actual state. Between calls the directory is stale,
    /// exactly like the hourly consensus of the real network.
    pub fn refresh_consensus(&mut self) {
        let now = self.sim.now();
        let mut running = 0u64;
        for i in 0..self.relays.len() {
            let node = self.relays[i];
            let up = !self.sim.fault_plan().node_down(node, now);
            running += u64::from(up);
            self.consensus.set_running(node, up);
        }
        let obs = self.sim.obs();
        obs.inc("tor.consensus.refreshes");
        obs.set_gauge("tor.consensus.running", running as i64);
        if obs.is_tracing() {
            obs.event(
                obs::names::TOR_CONSENSUS_REFRESH,
                now.as_nanos(),
                vec![
                    ("running", Value::U64(running)),
                    ("relays", Value::U64(self.relays.len() as u64)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{CircuitStatus, StreamStatus};

    #[test]
    fn testbed_builds_31_relays() {
        let net = TorNetworkBuilder::testbed(7).build();
        assert_eq!(net.relays.len(), 31);
        assert_eq!(net.consensus.len(), 31);
    }

    #[test]
    fn live_network_builds_with_requested_size() {
        let net = TorNetworkBuilder::live(7, 80).build();
        assert_eq!(net.relays.len(), 80);
        // Live relays share ASes: far fewer ASes than relays + host.
        assert!(net.sim.underlay().as_count() < 81);
    }

    #[test]
    fn explicit_four_hop_circuit_builds_and_echoes() {
        let mut net = TorNetworkBuilder::testbed(42).build();
        let (x, y) = (net.relays[3], net.relays[17]);
        let path = vec![net.local_w, x, y, net.local_z];
        let circuit = net.controller.build_circuit(&mut net.sim, path);
        net.sim.run_until_idle();
        assert_eq!(net.controller.circuit_status(circuit), CircuitStatus::Ready);

        let echo = net.echo_server;
        let stream = net.controller.open_stream(&mut net.sim, circuit, echo);
        net.sim.run_until_idle();
        assert_eq!(net.controller.stream_status(stream), StreamStatus::Open);

        let rtt = net
            .controller
            .echo_roundtrip_ms(&mut net.sim, stream, b"ting".to_vec())
            .expect("echo returns");
        // Sanity: RTT must exceed the sum of the two relay hops' ground
        // truth and stay well below a second.
        let floor = net.true_rtt_ms(x, y);
        assert!(rtt > floor, "rtt {rtt} vs floor {floor}");
        assert!(rtt < 1500.0, "rtt {rtt}");
        net.controller.close_circuit(&mut net.sim, circuit);
        net.sim.run_until_idle();
    }

    #[test]
    fn two_hop_circuit_works() {
        // C_x = (w, x): the isolation circuit of Fig. 2(b).
        let mut net = TorNetworkBuilder::testbed(43).build();
        let x = net.relays[5];
        let circuit = net
            .controller
            .build_and_wait(&mut net.sim, vec![net.local_w, x])
            .expect("2-hop circuit");
        let stream = net
            .controller
            .open_stream_and_wait(&mut net.sim, circuit, net.echo_server)
            .expect("stream");
        let rtt = net
            .controller
            .echo_roundtrip_ms(&mut net.sim, stream, vec![0u8; 8])
            .expect("echo");
        assert!(rtt > 0.0 && rtt < 1000.0, "rtt {rtt}");
    }

    #[test]
    fn one_hop_circuit_rejected() {
        let mut net = TorNetworkBuilder::testbed(44).build();
        let x = net.relays[0];
        let c = net.controller.build_circuit(&mut net.sim, vec![x]);
        net.sim.run_until_idle();
        assert_eq!(net.controller.circuit_status(c), CircuitStatus::Failed);
    }

    #[test]
    fn repeated_relay_rejected() {
        let mut net = TorNetworkBuilder::testbed(45).build();
        let x = net.relays[0];
        let c = net
            .controller
            .build_circuit(&mut net.sim, vec![net.local_w, x, net.local_w]);
        net.sim.run_until_idle();
        assert_eq!(net.controller.circuit_status(c), CircuitStatus::Failed);
    }

    #[test]
    fn metrics_track_circuit_lifecycle() {
        let mut net = TorNetworkBuilder::testbed(47).build();
        let (x, y) = (net.relays[2], net.relays[9]);
        let x_metrics = net.relay_metrics[2].clone();
        let before = x_metrics.snapshot();
        assert_eq!(before.circuits_created, 0);

        let c = net
            .controller
            .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z])
            .unwrap();
        let mid = x_metrics.snapshot();
        assert_eq!(mid.circuits_created, 1);
        assert_eq!(mid.open_circuits(), 1);
        // x saw its own EXTEND2 (recognized) and forwarded the later
        // handshake cells toward y/z.
        assert!(mid.cells_recognized >= 1);
        assert!(mid.cells_forwarded >= 1);

        let s = net
            .controller
            .open_stream_and_wait(&mut net.sim, c, net.echo_server)
            .unwrap();
        for _ in 0..5 {
            net.controller
                .echo_roundtrip_ms(&mut net.sim, s, vec![1])
                .unwrap();
        }
        let after_echo = x_metrics.snapshot();
        assert!(after_echo.cells_forwarded >= mid.cells_forwarded + 5);
        assert!(after_echo.busy_ms_accumulated > 0.0);
        assert_eq!(after_echo.queue_depth, 0, "queue drained at idle");

        net.controller.close_circuit(&mut net.sim, c);
        net.sim.run_until_idle();
        let end = x_metrics.snapshot();
        assert_eq!(end.circuits_destroyed, 1);
        assert_eq!(end.open_circuits(), 0);
        // The exit z opened exactly one stream.
        let z = net.z_metrics.snapshot();
        assert_eq!(z.streams_opened, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut net = TorNetworkBuilder::testbed(99).build();
            let (x, y) = (net.relays[1], net.relays[2]);
            let c = net
                .controller
                .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z])
                .unwrap();
            let s = net
                .controller
                .open_stream_and_wait(&mut net.sim, c, net.echo_server)
                .unwrap();
            net.controller
                .echo_roundtrip_ms(&mut net.sim, s, vec![1])
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disabled_fault_profile_is_bit_identical() {
        let run = |faulty: bool| {
            let mut b = TorNetworkBuilder::testbed(99);
            if faulty {
                b = b
                    .fault_plan(FaultPlan::new(1)) // all rates zero
                    .relay_faults(RelayFaultProfile {
                        seed: 7,
                        ..RelayFaultProfile::disabled()
                    });
            }
            let mut net = b.build();
            let (x, y) = (net.relays[1], net.relays[2]);
            let c = net
                .controller
                .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z])
                .unwrap();
            let s = net
                .controller
                .open_stream_and_wait(&mut net.sim, c, net.echo_server)
                .unwrap();
            net.controller
                .echo_roundtrip_ms(&mut net.sim, s, vec![1])
                .unwrap()
        };
        assert_eq!(run(false).to_bits(), run(true).to_bits());
    }

    #[test]
    fn extend_refusal_fails_circuit_and_counts() {
        let mut net = TorNetworkBuilder::testbed(50)
            .relay_faults(RelayFaultProfile {
                extend_refuse_prob: 1.0,
                seed: 3,
                ..RelayFaultProfile::disabled()
            })
            .build();
        let (x, y) = (net.relays[4], net.relays[8]);
        // w → x extends fine (w is fault-free), but x refuses to extend
        // to y, so the 4-hop circuit must fail.
        let built = net
            .controller
            .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z]);
        assert!(built.is_none(), "circuit built through refusing relay");
        assert!(net.relay_metrics[4].snapshot().extends_refused >= 1);
    }

    #[test]
    fn crashed_relay_fails_circuits_until_revived() {
        let mut net = TorNetworkBuilder::testbed(51).build();
        let (x, y) = (net.relays[6], net.relays[12]);
        net.crash_relay(x, None);
        assert!(!net.relay_up(x));
        // Stale consensus still claims the relay runs.
        assert!(net.consensus.descriptor(x).unwrap().flags.running);
        assert!(net
            .controller
            .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z])
            .is_none());

        net.refresh_consensus();
        assert!(!net.consensus.descriptor(x).unwrap().flags.running);
        assert!(net.consensus.descriptor(y).unwrap().flags.running);

        net.revive_relay(x);
        assert!(net.relay_up(x));
        net.refresh_consensus();
        assert!(net.consensus.descriptor(x).unwrap().flags.running);
        assert!(net
            .controller
            .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z])
            .is_some());
    }

    #[test]
    fn churn_departures_are_deterministic_and_lag_consensus() {
        let run = || {
            let mut net = TorNetworkBuilder::testbed(52).build();
            // A huge interval so some relays certainly depart.
            net.churn_step(&ChurnConfig::default(), 24.0 * 20.0, 77)
        };
        let departed = run();
        assert_eq!(departed, run());
        assert!(!departed.is_empty(), "no churn in 20 simulated days");

        let mut net = TorNetworkBuilder::testbed(52).build();
        let gone = net.churn_step(&ChurnConfig::default(), 24.0 * 20.0, 77);
        // Consensus is stale until refreshed.
        assert!(net.consensus.descriptor(gone[0]).unwrap().flags.running);
        net.refresh_consensus();
        for &node in &gone {
            assert!(!net.consensus.descriptor(node).unwrap().flags.running);
        }
        let up = net.consensus.relays().iter().filter(|r| r.flags.running);
        assert_eq!(up.count(), net.relays.len() - gone.len());
    }

    #[test]
    fn echo_rtts_bounded_below_by_circuit_ground_truth() {
        let mut net = TorNetworkBuilder::testbed(46).build();
        let (x, y) = (net.relays[10], net.relays[20]);
        let c = net
            .controller
            .build_and_wait(&mut net.sim, vec![net.local_w, x, y, net.local_z])
            .unwrap();
        let s = net
            .controller
            .open_stream_and_wait(&mut net.sim, c, net.echo_server)
            .unwrap();
        // Lower bound: every link's base latency, no forwarding delays.
        let u = net.sim.underlay_mut();
        let floor = u.base_rtt_ms(net.proxy.index(), net.local_w.index(), TrafficClass::Tor)
            + u.base_rtt_ms(net.local_w.index(), x.index(), TrafficClass::Tor)
            + u.base_rtt_ms(x.index(), y.index(), TrafficClass::Tor)
            + u.base_rtt_ms(y.index(), net.local_z.index(), TrafficClass::Tor)
            + u.base_rtt_ms(
                net.local_z.index(),
                net.echo_server.index(),
                TrafficClass::Tcp,
            );
        for _ in 0..5 {
            let rtt = net
                .controller
                .echo_roundtrip_ms(&mut net.sim, s, vec![7; 4])
                .unwrap();
            assert!(rtt >= floor, "rtt {rtt} below floor {floor}");
        }
    }
}
