//! The relay-population process behind Fig. 18 and §5.3's coverage
//! analysis.
//!
//! Fig. 18 plots, for two months of consensuses, the number of running
//! relays and the number of unique /24 prefixes they cover (observed
//! range: 5426–6044 unique /24s, with the relay count ~30% above the
//! prior year — i.e. a slow upward trend with daily churn). This module
//! simulates that population: a pool of relay records with IPs drawn
//! from ISP-like /16 blocks, Poisson-ish daily arrivals, proportional
//! departures, and a growth drift.

use geo::HostnameGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One relay's record in the population model (descriptor-level only —
/// churn analysis never needs packet-level simulation).
#[derive(Debug, Clone)]
pub struct PopulationRelay {
    pub ip: [u8; 4],
    pub rdns: Option<String>,
    /// Day the relay joined.
    pub joined_day: u32,
}

impl PopulationRelay {
    pub fn slash24(&self) -> [u8; 3] {
        [self.ip[0], self.ip[1], self.ip[2]]
    }
}

/// Parameters of the churn model.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Relays running on day 0.
    pub initial_relays: usize,
    /// Fraction of the population leaving per day.
    pub daily_departure_rate: f64,
    /// Mean arrivals per day as a fraction of the population (set above
    /// the departure rate to produce the paper's growth trend).
    pub daily_arrival_rate: f64,
    /// How many distinct /16 "provider blocks" IPs are drawn from.
    /// Fewer blocks ⇒ more /24 sharing. Tuned so ~6500 relays cover
    /// ~5400–6100 unique /24s as in Fig. 18.
    pub provider_blocks: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            initial_relays: 6500,
            daily_departure_rate: 0.02,
            daily_arrival_rate: 0.0205,
            provider_blocks: 1800,
        }
    }
}

/// A day-by-day snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DailySnapshot {
    pub day: u32,
    pub running_relays: usize,
    pub unique_slash24: usize,
}

/// The churn simulator.
#[derive(Debug)]
pub struct ChurnModel {
    config: ChurnConfig,
    rng: SmallRng,
    hostname_gen: HostnameGenerator,
    relays: Vec<PopulationRelay>,
    day: u32,
}

impl ChurnModel {
    pub fn new(config: ChurnConfig, seed: u64) -> ChurnModel {
        let mut m = ChurnModel {
            config,
            rng: SmallRng::seed_from_u64(seed),
            hostname_gen: HostnameGenerator::default(),
            relays: Vec::new(),
            day: 0,
        };
        for _ in 0..config.initial_relays {
            let r = m.new_relay(0);
            m.relays.push(r);
        }
        m
    }

    fn new_relay(&mut self, day: u32) -> PopulationRelay {
        // Draw a /16 provider block, then host bits. Clustering inside
        // blocks produces realistic /24 sharing.
        let block = self.rng.gen_range(0..self.config.provider_blocks);
        let ip = [
            (20 + block / 250) as u8,
            (block % 250) as u8,
            // Providers concentrate relays in a handful of /24s per
            // block; 16 per /16 reproduces Fig. 18's ~10–15% /24
            // sharing (5426–6044 unique /24s for ~6500 relays).
            self.rng.gen_range(0..16u8),
            self.rng.gen_range(1..=254u8),
        ];
        let rdns = self.hostname_gen.generate(ip, &mut self.rng);
        PopulationRelay {
            ip,
            rdns,
            joined_day: day,
        }
    }

    /// Current population.
    pub fn relays(&self) -> &[PopulationRelay] {
        &self.relays
    }

    /// Advances one day: departures then arrivals.
    pub fn step_day(&mut self) -> DailySnapshot {
        self.day += 1;
        let n = self.relays.len();
        // Departures: each relay independently leaves.
        let dep_rate = self.config.daily_departure_rate;
        let rng = &mut self.rng;
        let mut kept = Vec::with_capacity(n);
        for r in self.relays.drain(..) {
            if !rng.gen_bool(dep_rate) {
                kept.push(r);
            }
        }
        self.relays = kept;
        // Arrivals: Poisson-approximated by a binomial draw.
        let expected = self.config.daily_arrival_rate * n as f64;
        let arrivals = {
            // Simple Poisson sampler (Knuth) — rates here are ~100/day.
            let l = (-expected).exp();
            let mut k = 0u32;
            let mut p = 1.0;
            loop {
                p *= self.rng.gen_range(0.0..1.0f64);
                if p <= l || k > 10_000 {
                    break;
                }
                k += 1;
            }
            k as usize
        };
        let day = self.day;
        for _ in 0..arrivals {
            let r = self.new_relay(day);
            self.relays.push(r);
        }
        self.snapshot()
    }

    /// The current day's counts.
    pub fn snapshot(&self) -> DailySnapshot {
        let unique: HashSet<[u8; 3]> = self.relays.iter().map(|r| r.slash24()).collect();
        DailySnapshot {
            day: self.day,
            running_relays: self.relays.len(),
            unique_slash24: unique.len(),
        }
    }

    /// Runs `days` days and returns one snapshot per day (Fig. 18's
    /// series).
    pub fn run(&mut self, days: u32) -> Vec<DailySnapshot> {
        (0..days).map(|_| self.step_day()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_stays_in_figure_18_range() {
        let mut m = ChurnModel::new(ChurnConfig::default(), 1);
        let series = m.run(60);
        for snap in &series {
            assert!(
                snap.running_relays > 5800 && snap.running_relays < 7800,
                "day {} relays {}",
                snap.day,
                snap.running_relays
            );
            assert!(
                snap.unique_slash24 > 4800 && snap.unique_slash24 < 6700,
                "day {} /24s {}",
                snap.day,
                snap.unique_slash24
            );
            // /24s never exceed relays.
            assert!(snap.unique_slash24 <= snap.running_relays);
        }
    }

    #[test]
    fn growth_trend_is_positive() {
        let mut m = ChurnModel::new(ChurnConfig::default(), 2);
        let series = m.run(365);
        let start = series[..10].iter().map(|s| s.running_relays).sum::<usize>() / 10;
        let end = series[355..]
            .iter()
            .map(|s| s.running_relays)
            .sum::<usize>()
            / 10;
        // ~0.05%/day compounds to a visible yearly increase.
        assert!(end > start, "no growth: {start} → {end}");
    }

    #[test]
    fn churn_replaces_relays() {
        let mut m = ChurnModel::new(
            ChurnConfig {
                initial_relays: 1000,
                ..Default::default()
            },
            3,
        );
        m.run(30);
        let newcomers = m.relays().iter().filter(|r| r.joined_day > 0).count();
        assert!(newcomers > 200, "only {newcomers} newcomers after 30 days");
    }

    #[test]
    fn deterministic_per_seed() {
        let s1 = ChurnModel::new(ChurnConfig::default(), 7).run(10);
        let s2 = ChurnModel::new(ChurnConfig::default(), 7).run(10);
        assert_eq!(s1, s2);
    }

    #[test]
    fn some_relays_share_slash24s() {
        let m = ChurnModel::new(ChurnConfig::default(), 4);
        let snap = m.snapshot();
        assert!(snap.unique_slash24 < snap.running_relays);
    }
}
