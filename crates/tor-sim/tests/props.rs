//! Property tests for the Tor overlay: any valid explicit path builds a
//! working circuit whose echoes respect the underlay's physics.

use netsim::TrafficClass;
use proptest::prelude::*;
use tor_sim::{CircuitStatus, StreamStatus, TorNetworkBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any 2–5 hop path of distinct relays builds, attaches a stream,
    /// and echoes with an RTT bounded below by the sum of link bases.
    #[test]
    fn arbitrary_valid_paths_work(
        seed in 0u64..500,
        picks in prop::collection::vec(0usize..31, 1..4),
    ) {
        let mut net = TorNetworkBuilder::testbed(seed).build();
        // Build w, <distinct interior relays>, z.
        let mut interior: Vec<usize> = picks.clone();
        interior.dedup();
        let mut path = vec![net.local_w];
        let mut seen = std::collections::HashSet::new();
        for p in interior {
            if seen.insert(p) {
                path.push(net.relays[p]);
            }
        }
        path.push(net.local_z);

        let circuit = net.controller.build_circuit(&mut net.sim, path.clone());
        net.sim.run_until_idle();
        prop_assert_eq!(net.controller.circuit_status(circuit), CircuitStatus::Ready);

        let echo = net.echo_server;
        let stream = net.controller.open_stream(&mut net.sim, circuit, echo);
        net.sim.run_until_idle();
        prop_assert_eq!(net.controller.stream_status(stream), StreamStatus::Open);

        let rtt = net
            .controller
            .echo_roundtrip_ms(&mut net.sim, stream, vec![1, 2, 3])
            .expect("echo");
        // Physical floor: sum of base link RTTs along the path.
        let mut floor = 0.0;
        let hops: Vec<netsim::NodeId> =
            std::iter::once(net.proxy).chain(path.iter().copied()).collect();
        let u = net.sim.underlay_mut();
        for w in hops.windows(2) {
            floor += u.base_rtt_ms(w[0].index(), w[1].index(), TrafficClass::Tor);
        }
        floor += u.base_rtt_ms(
            net.local_z.index(),
            net.echo_server.index(),
            TrafficClass::Tcp,
        );
        prop_assert!(rtt >= floor - 1e-6, "rtt {rtt} below floor {floor}");
        prop_assert!(rtt < floor + 500.0, "rtt {rtt} implausibly above floor {floor}");

        net.controller.close_circuit(&mut net.sim, circuit);
        net.sim.run_until_idle();
    }

    /// The client's policy checks are total: no panic for any path, and
    /// invalid paths always fail rather than half-build.
    #[test]
    fn invalid_paths_fail_cleanly(
        seed in 0u64..200,
        raw in prop::collection::vec(0usize..40, 0..6),
    ) {
        let mut net = TorNetworkBuilder::testbed(seed).build();
        let path: Vec<netsim::NodeId> = raw
            .iter()
            .map(|&i| {
                if i < 31 {
                    net.relays[i]
                } else {
                    netsim::NodeId(5000 + i as u32) // unknown relay
                }
            })
            .collect();
        let has_dup = {
            let mut s = std::collections::HashSet::new();
            path.iter().any(|n| !s.insert(*n))
        };
        let invalid = path.len() < 2 || has_dup || raw.iter().any(|&i| i >= 31);
        let c = net.controller.build_circuit(&mut net.sim, path);
        net.sim.run_until_idle();
        let status = net.controller.circuit_status(c);
        if invalid {
            prop_assert_eq!(status, CircuitStatus::Failed);
        } else {
            prop_assert_eq!(status, CircuitStatus::Ready);
        }
    }

    /// Consensus path sampling always satisfies its own constraints.
    #[test]
    fn consensus_paths_are_valid(seed in 0u64..200, len in 2usize..6) {
        use rand::SeedableRng;
        let net = TorNetworkBuilder::live(seed, 40).build();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        if let Some(path) = net.consensus.sample_path(len, true, &mut rng) {
            prop_assert_eq!(path.len(), len);
            let mut s16 = std::collections::HashSet::new();
            for n in &path {
                let d = net.consensus.descriptor(*n).expect("descriptor");
                prop_assert!(d.flags.running);
                prop_assert!(s16.insert(d.slash16()), "duplicate /16");
            }
        }
    }

    /// Default (vanilla-Tor) paths honour guard/exit flags.
    #[test]
    fn default_paths_are_valid(seed in 0u64..200) {
        use rand::SeedableRng;
        let net = TorNetworkBuilder::live(seed, 40).build();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 1);
        for _ in 0..10 {
            if let Some(path) = net.consensus.default_path(&mut rng) {
                prop_assert_eq!(path.len(), 3);
                let g = net.consensus.descriptor(path[0]).unwrap();
                let e = net.consensus.descriptor(path[2]).unwrap();
                prop_assert!(g.flags.guard);
                prop_assert!(e.flags.exit);
            }
        }
    }
}
