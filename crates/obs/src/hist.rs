//! Log-bucketed (HDR-style) integer histograms.
//!
//! Latency distributions span four orders of magnitude (a 50 µs local
//! hop to a 30 s build timeout), which rules out fixed-width buckets.
//! [`LogHistogram`] uses the HdrHistogram bucketing scheme: values
//! below `2 · 2^g` (where `g` is the grouping-bits parameter) are
//! counted exactly, and above that each power-of-two range is split
//! into `2^g` sub-buckets, giving a bounded relative error of
//! `2^-g` everywhere. With the default `g = 5` that is ~3% — more than
//! enough to read a p99 off a phase-latency distribution.
//!
//! Counts live in a sparse `BTreeMap<bucket index, u64>`, so merging
//! two histograms is **exact** integer addition — no re-sampling, no
//! floating point. That is the property the parallel scanner needs:
//! per-vantage histograms merge into a campaign histogram that is
//! bit-identical to having recorded every value into one histogram in
//! any order (merge is associative and commutative; a property test
//! holds it to that).

use std::collections::BTreeMap;

/// A sparse log-bucketed histogram over `u64` values.
///
/// Units are the caller's business; the observability layer records
/// durations in integer microseconds (see [`crate::ms_to_us`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// Sub-bucket grouping bits `g`: each power-of-two range is split
    /// into `2^g` sub-buckets; values below `2^(g+1)` are exact.
    grouping_bits: u32,
    /// Sparse bucket counts, keyed by bucket index.
    counts: BTreeMap<u32, u64>,
    total: u64,
    /// Exact extrema (`min > max` ⇔ empty).
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(5)
    }
}

impl LogHistogram {
    /// Creates an empty histogram with `grouping_bits` sub-bucket bits
    /// (relative error ≤ `2^-grouping_bits`). Panics outside `1..=16`.
    pub fn new(grouping_bits: u32) -> LogHistogram {
        assert!(
            (1..=16).contains(&grouping_bits),
            "grouping_bits {grouping_bits} outside 1..=16"
        );
        LogHistogram {
            grouping_bits,
            counts: BTreeMap::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    pub fn grouping_bits(&self) -> u32 {
        self.grouping_bits
    }

    /// The bucket index covering `v`.
    pub fn index_of(&self, v: u64) -> u32 {
        let g = self.grouping_bits;
        let sub = 1u64 << g;
        if v < 2 * sub {
            // Exact region: one value per bucket.
            return v as u32;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - g;
        ((shift + 1) << g) + ((v >> shift) - sub) as u32
    }

    /// The inclusive `[lo, hi]` value range of bucket `index`.
    pub fn bucket_bounds(&self, index: u32) -> (u64, u64) {
        let g = self.grouping_bits;
        let sub = 1u64 << g;
        if u64::from(index) < 2 * sub {
            return (u64::from(index), u64::from(index));
        }
        let block = index >> g; // ≥ 2 past the exact region
        let shift = block - 1;
        let rem = u64::from(index) & (sub - 1);
        let lo = (sub + rem) << shift;
        // `(1 << shift) - 1` first: the top bucket's `hi` is u64::MAX
        // and `lo + (1 << shift)` would overflow before the subtract.
        let hi = lo + ((1u64 << shift) - 1);
        (lo, hi)
    }

    /// Records one observation of `v`.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(self.index_of(v)).or_insert(0) += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += u128::from(v) * u128::from(n);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The nearest-rank `q`-quantile, reported as the upper bound of
    /// the bucket holding that rank, clamped to the recorded extrema
    /// (so `quantile(0.0..=1.0)` always lies in `[min, max]` and is
    /// monotone in `q`). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (&idx, &n) in &self.counts {
            cum += n;
            if cum >= rank {
                return Some(self.bucket_bounds(idx).1.clamp(self.min, self.max));
            }
        }
        unreachable!("rank {rank} beyond total {}", self.total)
    }

    /// Merges `other` into `self` by exact integer bucket addition.
    /// Panics when the grouping bits differ (the bucket grids would
    /// not line up).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.grouping_bits, other.grouping_bits,
            "merging histograms with different grouping bits"
        );
        for (&idx, &n) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += n;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Occupied buckets in value order, as `(lo, hi, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().map(|(&idx, &n)| {
            let (lo, hi) = self.bucket_bounds(idx);
            (lo, hi, n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        let mut h = LogHistogram::new(5);
        for v in 0..64 {
            h.record(v);
        }
        for v in 0..64u64 {
            let (lo, hi) = h.bucket_bounds(h.index_of(v));
            assert_eq!((lo, hi), (v, v));
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
    }

    #[test]
    fn buckets_bracket_and_bound_relative_error() {
        let h = LogHistogram::new(5);
        for v in [
            0,
            1,
            63,
            64,
            65,
            1000,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let (lo, hi) = h.bucket_bounds(h.index_of(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
            // Bucket width ≤ 2^-g of the bucket's low bound.
            assert!(hi - lo <= lo >> 5, "bucket [{lo},{hi}] too wide");
        }
    }

    #[test]
    fn indices_are_contiguous_over_bucket_boundaries() {
        let h = LogHistogram::new(3);
        let mut last = None;
        let mut v = 0u64;
        while v < 10_000 {
            let idx = h.index_of(v);
            if let Some(prev) = last {
                assert!(idx == prev || idx == prev + 1, "index jumped at {v}");
            }
            last = Some(idx);
            v += 1;
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = LogHistogram::new(5);
        for v in 1..=1000 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((480..=540).contains(&p50), "p50 {p50}");
        assert!((980..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.mean(), Some(500.5));
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = LogHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogHistogram::new(5);
        let mut b = LogHistogram::new(5);
        let mut whole = LogHistogram::new(5);
        for v in [3u64, 77, 1024, 5, 999_999] {
            a.record(v);
            whole.record(v);
        }
        for v in [4u64, 77, 2048] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "different grouping bits")]
    fn merge_rejects_mismatched_grids() {
        let mut a = LogHistogram::new(5);
        a.merge(&LogHistogram::new(6));
    }
}
