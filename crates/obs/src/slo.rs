//! Live SLO engine: windowed good/bad aggregation and burn-rate
//! breach detection in virtual time.
//!
//! A service-level objective here is a declarative [`SloSpec`]: a
//! name, an objective (the target fraction of *good* observations, in
//! parts-per-million), and a burn threshold (how fast the error
//! budget may be consumed before the SLO counts as breached, in
//! milli-multiples of the budget). The engine keeps one fixed ring of
//! virtual-time buckets per SLO ([`WindowSpec`]): each observation is
//! a `(good, bad)` increment at an instant, buckets older than the
//! window fall off as time advances, and [`SloEngine::evaluate`]
//! turns the windowed totals into a breach verdict.
//!
//! The burn-rate math is pure integer arithmetic so evaluation is
//! deterministic and the config types stay `Copy + Eq`. With
//! `objective_ppm` the target and `budget_ppm = 1_000_000 −
//! objective_ppm` the error budget, the window is breaching iff
//!
//! ```text
//! total > 0  and  bad · 1_000_000 · 1000 ≥ total · budget_ppm · burn_threshold_milli
//! ```
//!
//! i.e. the observed bad fraction is at least `burn_threshold_milli /
//! 1000` times the budget. A zero budget (objective 100%) breaches on
//! any bad observation; an empty window never breaches (no data is
//! not a violation — staleness of the *data* is its own SLO).
//!
//! Breach transitions are emitted as the registered
//! [`names::SLO_BREACH_BEGIN`]/[`names::SLO_BREACH_END`] span pair
//! with the SLO's name in a `slo` string field, and the windowed
//! totals are published as `slo.{name}.{good,bad,burn_milli}` gauges —
//! both deterministic under seed + config hash like everything else
//! in this crate.

use crate::{names, Obs, SpanId, Value};

/// Well-known SLO names used by the serving pipeline. The engine
/// itself is name-agnostic; these constants just keep the write side
/// (`oracle::pipeline`) and the read side (`ting-prof slo`) agreeing.
pub const SLO_COVERAGE: &str = "coverage";
pub const SLO_SHARD_PROGRESS: &str = "shard_progress";
pub const SLO_PUBLISH_LATENCY: &str = "publish_latency";
pub const SLO_STALENESS: &str = "staleness";

/// The shared window geometry: `buckets` ring slots of `bucket_ns`
/// virtual nanoseconds each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Width of one ring bucket in virtual nanoseconds (min 1).
    pub bucket_ns: u64,
    /// Number of ring buckets (min 1); the window spans
    /// `bucket_ns * buckets` nanoseconds.
    pub buckets: u32,
}

/// One declarative service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Name carried in the `slo` field of breach events and in the
    /// `slo.{name}.*` gauge family.
    pub name: &'static str,
    /// Target good fraction in parts-per-million (999_000 = 99.9%).
    /// The error budget is `1_000_000 - objective_ppm`.
    pub objective_ppm: u32,
    /// Burn-rate threshold in milli-multiples of the budget: 1000
    /// breaches exactly when the bad fraction reaches the budget,
    /// 2000 only at twice the budget, 500 at half of it.
    pub burn_threshold_milli: u32,
}

/// Windowed totals for one SLO at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTotals {
    pub good: u64,
    pub bad: u64,
    /// Burn rate in milli-multiples of the error budget, saturating;
    /// 0 when the window is empty.
    pub burn_milli: u64,
    pub breaching: bool,
}

#[derive(Debug)]
struct Window {
    spec: SloSpec,
    /// `(good, bad)` per ring slot, indexed by absolute bucket number
    /// modulo ring length.
    ring: Vec<(u64, u64)>,
    /// Absolute bucket number of the newest slot.
    head: u64,
    /// Open breach span, when the SLO is currently breaching.
    breach: Option<SpanId>,
}

impl Window {
    /// Moves the ring head forward to absolute bucket `abs`, zeroing
    /// every slot that rotates in. Time never moves backwards here;
    /// late observations fold into the oldest retained bucket instead.
    fn advance(&mut self, abs: u64) {
        if abs <= self.head {
            return;
        }
        let len = self.ring.len() as u64;
        let steps = (abs - self.head).min(len);
        for i in 1..=steps {
            let idx = ((self.head + i) % len) as usize;
            self.ring[idx] = (0, 0);
        }
        self.head = abs;
    }

    fn add(&mut self, abs: u64, good: u64, bad: u64) {
        self.advance(abs);
        let len = self.ring.len() as u64;
        let oldest = self.head.saturating_sub(len - 1);
        let slot = abs.max(oldest);
        let entry = &mut self.ring[(slot % len) as usize];
        entry.0 += good;
        entry.1 += bad;
    }

    fn totals(&self) -> (u64, u64) {
        self.ring
            .iter()
            .fold((0, 0), |(g, b), (wg, wb)| (g + wg, b + wb))
    }

    /// The integer burn-rate predicate from the module docs.
    fn breaching(&self, good: u64, bad: u64) -> bool {
        let total = good + bad;
        if total == 0 {
            return false;
        }
        let budget_ppm = 1_000_000 - u64::from(self.spec.objective_ppm.min(1_000_000));
        if budget_ppm == 0 {
            return bad > 0;
        }
        (bad as u128) * 1_000_000 * 1000
            >= (total as u128) * (budget_ppm as u128) * u128::from(self.spec.burn_threshold_milli)
    }

    /// Burn rate in milli-budgets, for the gauge: `(bad/total) /
    /// (budget_ppm/1e6) * 1000`, saturating at `u64::MAX`.
    fn burn_milli(&self, good: u64, bad: u64) -> u64 {
        let total = good + bad;
        if total == 0 || bad == 0 {
            return 0;
        }
        let budget_ppm = 1_000_000 - u64::from(self.spec.objective_ppm.min(1_000_000));
        if budget_ppm == 0 {
            return u64::MAX;
        }
        let num = (bad as u128) * 1_000_000 * 1000;
        let den = (total as u128) * (budget_ppm as u128);
        u64::try_from(num / den).unwrap_or(u64::MAX)
    }
}

/// The engine: a set of SLO windows sharing one geometry, fed by the
/// write path and evaluated once per pipeline tick.
#[derive(Debug)]
pub struct SloEngine {
    obs: Obs,
    bucket_ns: u64,
    windows: Vec<Window>,
}

impl SloEngine {
    pub fn new(obs: Obs, window: WindowSpec, specs: &[SloSpec]) -> SloEngine {
        SloEngine {
            obs,
            bucket_ns: window.bucket_ns.max(1),
            windows: specs
                .iter()
                .map(|spec| Window {
                    spec: *spec,
                    ring: vec![(0, 0); window.buckets.max(1) as usize],
                    head: 0,
                    breach: None,
                })
                .collect(),
        }
    }

    fn bucket(&self, t_ns: u64) -> u64 {
        t_ns / self.bucket_ns
    }

    /// Records `good`/`bad` observations for the named SLO at virtual
    /// instant `t_ns`. Unknown names are ignored (the write side may
    /// feed more signals than a given config tracks).
    pub fn observe(&mut self, name: &str, t_ns: u64, good: u64, bad: u64) {
        if good == 0 && bad == 0 {
            return;
        }
        let abs = self.bucket(t_ns);
        if let Some(w) = self.windows.iter_mut().find(|w| w.spec.name == name) {
            w.add(abs, good, bad);
        }
    }

    /// Advances every window to `t_ns`, refreshes the `slo.{name}.*`
    /// gauges, and emits a breach begin/end transition for every SLO
    /// whose verdict changed.
    pub fn evaluate(&mut self, t_ns: u64) {
        let abs = self.bucket(t_ns);
        for w in &mut self.windows {
            w.advance(abs);
            let (good, bad) = w.totals();
            let burn = w.burn_milli(good, bad);
            let name = w.spec.name;
            self.obs.set_gauge(
                &format!("slo.{name}.good"),
                i64::try_from(good).unwrap_or(i64::MAX),
            );
            self.obs.set_gauge(
                &format!("slo.{name}.bad"),
                i64::try_from(bad).unwrap_or(i64::MAX),
            );
            self.obs.set_gauge(
                &format!("slo.{name}.burn_milli"),
                i64::try_from(burn).unwrap_or(i64::MAX),
            );
            let breaching = w.breaching(good, bad);
            match (breaching, w.breach) {
                (true, None) => {
                    let span = self.obs.span_begin(
                        names::SLO_BREACH_BEGIN,
                        t_ns,
                        vec![
                            ("slo", Value::Str(name.to_owned())),
                            ("good", Value::U64(good)),
                            ("bad", Value::U64(bad)),
                            ("burn_milli", Value::U64(burn)),
                        ],
                    );
                    w.breach = Some(span);
                }
                (false, Some(span)) => {
                    self.obs.span_end(
                        names::SLO_BREACH_END,
                        span,
                        t_ns,
                        vec![
                            ("slo", Value::Str(name.to_owned())),
                            ("good", Value::U64(good)),
                            ("bad", Value::U64(bad)),
                            ("burn_milli", Value::U64(burn)),
                        ],
                    );
                    w.breach = None;
                }
                _ => {}
            }
        }
    }

    /// The windowed totals and verdict for one SLO, as of the last
    /// `observe`/`evaluate` advance. `None` for unknown names.
    pub fn totals(&self, name: &str) -> Option<SloTotals> {
        self.windows.iter().find(|w| w.spec.name == name).map(|w| {
            let (good, bad) = w.totals();
            SloTotals {
                good,
                bad,
                burn_milli: w.burn_milli(good, bad),
                breaching: w.breach.is_some(),
            }
        })
    }

    /// True when the named SLO's last evaluation found it breaching.
    pub fn is_breaching(&self, name: &str) -> bool {
        self.windows
            .iter()
            .any(|w| w.spec.name == name && w.breach.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsConfig;

    fn engine(objective_ppm: u32, burn_threshold_milli: u32) -> (SloEngine, Obs) {
        let obs = Obs::new(ObsConfig::Trace);
        let eng = SloEngine::new(
            obs.clone(),
            WindowSpec {
                bucket_ns: 100,
                buckets: 4,
            },
            &[SloSpec {
                name: "t",
                objective_ppm,
                burn_threshold_milli,
            }],
        );
        (eng, obs)
    }

    #[test]
    fn empty_window_never_breaches() {
        let (mut eng, obs) = engine(999_000, 1000);
        eng.evaluate(0);
        eng.evaluate(5_000);
        assert!(!eng.is_breaching("t"));
        assert!(obs.events().is_empty());
    }

    #[test]
    fn breach_begins_and_ends_as_the_window_slides() {
        // Objective 99% → budget 10_000 ppm; threshold 1000 → breach
        // at a 1% bad fraction.
        let (mut eng, obs) = engine(990_000, 1000);
        eng.observe("t", 50, 99, 1); // exactly 1% bad
        eng.evaluate(50);
        assert!(eng.is_breaching("t"));
        // Window is 4 buckets × 100ns; by t=450 the bad bucket fell off.
        eng.observe("t", 420, 10, 0);
        eng.evaluate(450);
        assert!(!eng.is_breaching("t"));
        let names: Vec<&str> = obs.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["slo.breach.begin", "slo.breach.end"]);
        let begin = &obs.events()[0];
        assert!(begin
            .fields
            .contains(&(("slo"), Value::Str("t".to_owned()))));
    }

    #[test]
    fn zero_budget_breaches_on_any_bad() {
        let (mut eng, _obs) = engine(1_000_000, 1000);
        eng.observe("t", 10, 1_000, 0);
        eng.evaluate(10);
        assert!(!eng.is_breaching("t"));
        eng.observe("t", 20, 0, 1);
        eng.evaluate(20);
        assert!(eng.is_breaching("t"));
        assert_eq!(eng.totals("t").unwrap().burn_milli, u64::MAX);
    }

    #[test]
    fn threshold_scales_the_budget() {
        // 2% bad against a 1% budget: burn 2000 milli. Threshold 3000
        // tolerates it; threshold 2000 does not.
        let (mut tolerant, _) = engine(990_000, 3000);
        tolerant.observe("t", 10, 98, 2);
        tolerant.evaluate(10);
        assert!(!tolerant.is_breaching("t"));
        assert_eq!(tolerant.totals("t").unwrap().burn_milli, 2000);

        let (mut strict, _) = engine(990_000, 2000);
        strict.observe("t", 10, 98, 2);
        strict.evaluate(10);
        assert!(strict.is_breaching("t"));
    }

    #[test]
    fn late_observations_fold_into_the_oldest_bucket() {
        let (mut eng, _) = engine(990_000, 1000);
        eng.evaluate(1_000); // head at bucket 10
        eng.observe("t", 0, 0, 5); // far in the past → oldest slot
        let t = eng.totals("t").unwrap();
        assert_eq!((t.good, t.bad), (0, 5));
        // The late entries expire with the oldest bucket, one step on.
        eng.evaluate(1_100);
        let t = eng.totals("t").unwrap();
        assert_eq!((t.good, t.bad), (0, 0));
    }

    #[test]
    fn gauges_track_windowed_totals() {
        let (mut eng, obs) = engine(990_000, 1000);
        eng.observe("t", 10, 7, 3);
        eng.evaluate(10);
        let doc = obs.document(&crate::ExportMeta {
            seed: 1,
            config_hash: crate::config_hash("slo-test"),
        });
        let gauges: Vec<(String, i64)> = doc.gauges;
        assert!(gauges.contains(&("slo.t.good".to_owned(), 7)));
        assert!(gauges.contains(&("slo.t.bad".to_owned(), 3)));
    }

    #[test]
    fn transition_sequence_is_deterministic() {
        let run = || {
            let (mut eng, obs) = engine(990_000, 1000);
            for i in 0..20u64 {
                let bad = u64::from(i % 7 == 0);
                eng.observe("t", i * 60, 9, bad);
                eng.evaluate(i * 60);
            }
            obs.events()
        };
        assert_eq!(run(), run());
    }
}
