//! Deterministic JSONL export of an observability registry.
//!
//! One line per record, in a fixed order: the `meta` header (format
//! tag, seed, FNV-1a hash of the run configuration), then counters,
//! gauges, and histograms in lexicographic name order, then the event
//! log in emission order. Every map is a `BTreeMap` and every float is
//! printed with `{}` (Rust's shortest exactly-roundtripping form), so
//! two runs of the same seeded simulation export **byte-identical**
//! documents — the golden-trace determinism contract.

use crate::{Inner, ObsConfig, Value};
use std::fmt::Write as _;

/// 64-bit FNV-1a over raw bytes — the export's config fingerprint.
/// Stable, dependency-free, and cheap; collision resistance is not a
/// goal (the hash keys trace files to configs, it does not secure them).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints a run-configuration description (any stable textual
/// rendering of the config, e.g. a `Debug` format) for the meta header.
pub fn config_hash(config_text: &str) -> u64 {
    fnv1a64(config_text.as_bytes())
}

/// The identity of one exported run: everything needed to tie a trace
/// file back to the simulation that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportMeta {
    /// The run's scenario seed.
    pub seed: u64,
    /// [`config_hash`] of the run configuration.
    pub config_hash: u64,
}

/// Escapes `s` into `out` as JSON string contents (without the quotes).
fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        // `{}` prints the shortest exactly-roundtripping decimal; a
        // non-finite value has no JSON spelling and becomes null.
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => {
            out.push('"');
            push_json_escaped(out, s);
            out.push('"');
        }
    }
}

/// Renders the full registry as JSONL (see module docs for the order).
pub(crate) fn render_jsonl(inner: &Inner, meta: &ExportMeta) -> String {
    let mut out = String::new();
    let mode = match inner.config {
        ObsConfig::Off => "off",
        ObsConfig::Metrics => "metrics",
        ObsConfig::Trace => "trace",
    };
    let _ = writeln!(
        out,
        "{{\"meta\":{{\"format\":\"ting-obs-v1\",\"mode\":\"{mode}\",\
         \"seed\":{},\"config_hash\":\"{:016x}\"}}}}",
        meta.seed, meta.config_hash
    );
    for (name, cell) in inner.counters.borrow().iter() {
        let _ = write!(out, "{{\"counter\":\"");
        push_json_escaped(&mut out, name);
        let _ = writeln!(out, "\",\"value\":{}}}", cell.get());
    }
    for (name, value) in inner.gauges.borrow().iter() {
        let _ = write!(out, "{{\"gauge\":\"");
        push_json_escaped(&mut out, name);
        let _ = writeln!(out, "\",\"value\":{value}}}");
    }
    for (name, hist) in inner.hists.borrow().iter() {
        let h = hist.borrow();
        let _ = write!(out, "{{\"hist\":\"");
        push_json_escaped(&mut out, name);
        let _ = write!(out, "\",\"count\":{}", h.count());
        if h.count() > 0 {
            let _ = write!(
                out,
                ",\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                h.min().unwrap(),
                h.quantile(0.5).unwrap(),
                h.quantile(0.9).unwrap(),
                h.quantile(0.99).unwrap(),
                h.max().unwrap()
            );
        }
        out.push_str(",\"buckets\":[");
        for (i, (lo, hi, n)) in h.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{hi},{n}]");
        }
        out.push_str("]}\n");
    }
    for ev in inner.events.borrow().iter() {
        let _ = write!(out, "{{\"event\":\"");
        push_json_escaped(&mut out, ev.name);
        let _ = write!(out, "\",\"t_ns\":{}", ev.t_ns);
        for (key, value) in &ev.fields {
            let _ = write!(out, ",\"");
            push_json_escaped(&mut out, key);
            out.push_str("\":");
            push_value(&mut out, value);
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn escaping_covers_specials() {
        let mut out = String::new();
        push_json_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn floats_render_shortest_and_nonfinite_as_null() {
        let mut out = String::new();
        push_value(&mut out, &Value::F64(0.5));
        out.push(' ');
        push_value(&mut out, &Value::F64(f64::NAN));
        assert_eq!(out, "0.5 null");
    }
}
