//! Deterministic JSONL export of an observability registry.
//!
//! One line per record, in a fixed order: the `meta` header (format
//! tag, seed, FNV-1a hash of the run configuration), then counters,
//! gauges, and histograms in lexicographic name order, then the event
//! log in emission order. Every map is a `BTreeMap` and every float is
//! printed with `{}` (Rust's shortest exactly-roundtripping form), so
//! two runs of the same seeded simulation export **byte-identical**
//! documents — the golden-trace determinism contract.
//!
//! The export is factored through [`Document`], the parser-facing
//! model of one exported run: the live registry is first snapshotted
//! into a `Document`, then rendered by [`Document::render_jsonl`].
//! A consumer that parses a trace back into a `Document` (see
//! `obs-analyze`) re-renders it through the *same* code path, which is
//! what makes `parse ∘ render` the identity on bytes.

use crate::{Inner, ObsConfig, Value};
use std::fmt::Write as _;

/// The format tag every export carries in its meta header.
pub const FORMAT: &str = "ting-obs-v1";

/// 64-bit FNV-1a over raw bytes — the export's config fingerprint.
/// Stable, dependency-free, and cheap; collision resistance is not a
/// goal (the hash keys trace files to configs, it does not secure them).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints a run-configuration description (any stable textual
/// rendering of the config, e.g. a `Debug` format) for the meta header.
pub fn config_hash(config_text: &str) -> u64 {
    fnv1a64(config_text.as_bytes())
}

/// The identity of one exported run: everything needed to tie a trace
/// file back to the simulation that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportMeta {
    /// The run's scenario seed.
    pub seed: u64,
    /// [`config_hash`] of the run configuration.
    pub config_hash: u64,
}

/// The printed summary of a non-empty histogram. The exporter derives
/// these from the exact tracked extremes and the bucket quantiles; a
/// parsed document keeps them verbatim (they are *not* reconstructible
/// from the buckets alone — min/max are exact, buckets are not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    pub min: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// One exported histogram line.
#[derive(Debug, Clone, PartialEq)]
pub struct HistRecord {
    pub name: String,
    pub count: u64,
    /// Present exactly when `count > 0`.
    pub summary: Option<HistSummary>,
    /// `(lo, hi, n)` occupancy of each non-empty log bucket.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// One exported event line: like [`crate::Event`] but with owned names,
/// so parsed documents need no `'static` interning.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub name: String,
    pub t_ns: u64,
    pub fields: Vec<(String, Value)>,
}

/// The parser-facing model of one exported run: everything a
/// `ting-obs-v1` JSONL document carries, in document order.
/// [`Document::render_jsonl`] is the one and only renderer — the live
/// exporter goes through it too.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Recording level of the run (`mode` in the meta header).
    pub config: ObsConfig,
    pub seed: u64,
    pub config_hash: u64,
    /// Counters in lexicographic name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in lexicographic name order.
    pub gauges: Vec<(String, i64)>,
    /// Histograms in lexicographic name order.
    pub hists: Vec<HistRecord>,
    /// Events in emission order.
    pub events: Vec<EventRecord>,
}

/// The `mode` string of a recording level, as printed in the meta
/// header.
pub fn mode_name(config: ObsConfig) -> &'static str {
    match config {
        ObsConfig::Off => "off",
        ObsConfig::Metrics => "metrics",
        ObsConfig::Trace => "trace",
    }
}

impl Document {
    /// Snapshots a live registry into the export model.
    pub(crate) fn from_registry(inner: &Inner, meta: &ExportMeta) -> Document {
        let counters = inner
            .counters
            .borrow()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = inner
            .gauges
            .borrow()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        let hists = inner
            .hists
            .borrow()
            .iter()
            .map(|(name, hist)| {
                let h = hist.borrow();
                HistRecord {
                    name: name.clone(),
                    count: h.count(),
                    summary: (h.count() > 0).then(|| HistSummary {
                        min: h.min().unwrap(),
                        p50: h.quantile(0.5).unwrap(),
                        p90: h.quantile(0.9).unwrap(),
                        p99: h.quantile(0.99).unwrap(),
                        max: h.max().unwrap(),
                    }),
                    buckets: h.buckets().collect(),
                }
            })
            .collect();
        let events = inner
            .events
            .borrow()
            .iter()
            .map(|ev| EventRecord {
                name: ev.name.to_owned(),
                t_ns: ev.t_ns,
                fields: ev
                    .fields
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.clone()))
                    .collect(),
            })
            .collect();
        Document {
            config: inner.config,
            seed: meta.seed,
            config_hash: meta.config_hash,
            counters,
            gauges,
            hists,
            events,
        }
    }

    /// Renders the document as `ting-obs-v1` JSONL (see module docs for
    /// the order). Byte-deterministic: equal documents render equal.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"meta\":{{\"format\":\"{FORMAT}\",\"mode\":\"{}\",\
             \"seed\":{},\"config_hash\":\"{:016x}\"}}}}",
            mode_name(self.config),
            self.seed,
            self.config_hash
        );
        for (name, value) in &self.counters {
            let _ = write!(out, "{{\"counter\":\"");
            push_json_escaped(&mut out, name);
            let _ = writeln!(out, "\",\"value\":{value}}}");
        }
        for (name, value) in &self.gauges {
            let _ = write!(out, "{{\"gauge\":\"");
            push_json_escaped(&mut out, name);
            let _ = writeln!(out, "\",\"value\":{value}}}");
        }
        for h in &self.hists {
            let _ = write!(out, "{{\"hist\":\"");
            push_json_escaped(&mut out, &h.name);
            let _ = write!(out, "\",\"count\":{}", h.count);
            if let Some(s) = &h.summary {
                let _ = write!(
                    out,
                    ",\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                    s.min, s.p50, s.p90, s.p99, s.max
                );
            }
            out.push_str(",\"buckets\":[");
            for (i, (lo, hi, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{n}]");
            }
            out.push_str("]}\n");
        }
        for ev in &self.events {
            let _ = write!(out, "{{\"event\":\"");
            push_json_escaped(&mut out, &ev.name);
            let _ = write!(out, "\",\"t_ns\":{}", ev.t_ns);
            for (key, value) in &ev.fields {
                let _ = write!(out, ",\"");
                push_json_escaped(&mut out, key);
                out.push_str("\":");
                push_value(&mut out, value);
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Escapes `s` into `out` as JSON string contents (without the quotes).
fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        // `{}` prints the shortest exactly-roundtripping decimal; a
        // non-finite value has no JSON spelling and becomes null.
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => {
            out.push('"');
            push_json_escaped(out, s);
            out.push('"');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn escaping_covers_specials() {
        let mut out = String::new();
        push_json_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn floats_render_shortest_and_nonfinite_as_null() {
        let mut out = String::new();
        push_value(&mut out, &Value::F64(0.5));
        out.push(' ');
        push_value(&mut out, &Value::F64(f64::NAN));
        assert_eq!(out, "0.5 null");
    }

    #[test]
    fn document_renders_summary_only_when_nonempty() {
        let doc = Document {
            config: ObsConfig::Trace,
            seed: 1,
            config_hash: 2,
            counters: vec![],
            gauges: vec![],
            hists: vec![
                HistRecord {
                    name: "empty".into(),
                    count: 0,
                    summary: None,
                    buckets: vec![],
                },
                HistRecord {
                    name: "one".into(),
                    count: 1,
                    summary: Some(HistSummary {
                        min: 5,
                        p50: 5,
                        p90: 5,
                        p99: 5,
                        max: 5,
                    }),
                    buckets: vec![(5, 5, 1)],
                },
            ],
            events: vec![],
        };
        let out = doc.render_jsonl();
        assert!(out.contains("{\"hist\":\"empty\",\"count\":0,\"buckets\":[]}"));
        assert!(out.contains(
            "{\"hist\":\"one\",\"count\":1,\"min\":5,\"p50\":5,\"p90\":5,\
             \"p99\":5,\"max\":5,\"buckets\":[[5,5,1]]}"
        ));
    }
}
