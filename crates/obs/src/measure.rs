//! Measurement-pipeline counters.
//!
//! [`MeasurementMetrics`] predates the [`crate::Obs`] registry and
//! moved here (from `tor-sim`) when the observability layer unified
//! the stack's instrumentation: the Ting driver and scanner bump these
//! counters unconditionally — they are part of the pipeline's public
//! behaviour and several tests pin them — while `Obs` adds the named
//! registry, histograms, and event log on top. `tor-sim` re-exports
//! these types, so existing `tor_sim::MeasurementMetrics` paths keep
//! working.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Counters the measurement pipeline (Ting driver + scanner) maintains.
#[derive(Debug, Default)]
struct MeasurementInner {
    circuits_failed: Cell<u64>,
    probes_timed_out: Cell<u64>,
    retries: Cell<u64>,
    pairs_requeued: Cell<u64>,
    estimates_rejected: Cell<u64>,
    estimates_flagged: Cell<u64>,
    relays_quarantined: Cell<u64>,
    relays_released: Cell<u64>,
    probation_probes: Cell<u64>,
    /// Human-readable retry trace — one line per resilience event, in
    /// order. Deterministic runs produce identical traces.
    trace: RefCell<Vec<String>>,
}

/// A cheap, clonable handle to the measurement pipeline's counters.
#[derive(Debug, Clone, Default)]
pub struct MeasurementMetrics {
    inner: Rc<MeasurementInner>,
}

/// A point-in-time copy of the measurement counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeasurementSnapshot {
    /// Circuit builds that did not reach Ready (including rebuilds).
    pub circuits_failed: u64,
    /// Probes whose echo missed the per-probe deadline.
    pub probes_timed_out: u64,
    /// Measurement attempts retried after a failure.
    pub retries: u64,
    /// Scanner pairs put back on the queue under backoff.
    pub pairs_requeued: u64,
    /// Estimates refused by validation (never cached); the reason code
    /// is in the trace.
    pub estimates_rejected: u64,
    /// Estimates cached but flagged suspect by validation.
    pub estimates_flagged: u64,
    /// Relay quarantine entries (health score collapsed).
    pub relays_quarantined: u64,
    /// Relay quarantine releases (probation or decay).
    pub relays_released: u64,
    /// Probation probes scheduled for quarantined relays.
    pub probation_probes: u64,
}

impl MeasurementMetrics {
    pub fn new() -> MeasurementMetrics {
        MeasurementMetrics::default()
    }

    pub fn on_circuit_failed(&self) {
        self.inner
            .circuits_failed
            .set(self.inner.circuits_failed.get() + 1);
    }

    pub fn on_probe_timed_out(&self) {
        self.inner
            .probes_timed_out
            .set(self.inner.probes_timed_out.get() + 1);
    }

    pub fn on_retry(&self) {
        self.inner.retries.set(self.inner.retries.get() + 1);
    }

    pub fn on_pair_requeued(&self) {
        self.inner
            .pairs_requeued
            .set(self.inner.pairs_requeued.get() + 1);
    }

    pub fn on_estimate_rejected(&self) {
        self.inner
            .estimates_rejected
            .set(self.inner.estimates_rejected.get() + 1);
    }

    pub fn on_estimate_flagged(&self) {
        self.inner
            .estimates_flagged
            .set(self.inner.estimates_flagged.get() + 1);
    }

    pub fn on_relay_quarantined(&self) {
        self.inner
            .relays_quarantined
            .set(self.inner.relays_quarantined.get() + 1);
    }

    pub fn on_relay_released(&self) {
        self.inner
            .relays_released
            .set(self.inner.relays_released.get() + 1);
    }

    pub fn on_probation_probe(&self) {
        self.inner
            .probation_probes
            .set(self.inner.probation_probes.get() + 1);
    }

    /// Appends one line to the retry trace.
    pub fn trace(&self, line: String) {
        self.inner.trace.borrow_mut().push(line);
    }

    /// The retry trace so far.
    pub fn trace_lines(&self) -> Vec<String> {
        self.inner.trace.borrow().clone()
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> MeasurementSnapshot {
        MeasurementSnapshot {
            circuits_failed: self.inner.circuits_failed.get(),
            probes_timed_out: self.inner.probes_timed_out.get(),
            retries: self.inner.retries.get(),
            pairs_requeued: self.inner.pairs_requeued.get(),
            estimates_rejected: self.inner.estimates_rejected.get(),
            estimates_flagged: self.inner.estimates_flagged.get(),
            relays_quarantined: self.inner.relays_quarantined.get(),
            relays_released: self.inner.relays_released.get(),
            probation_probes: self.inner.probation_probes.get(),
        }
    }
}
