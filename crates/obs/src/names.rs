//! The event-name registry: one authoritative list of every event and
//! span the stack emits.
//!
//! Emitters (`netsim`, `tor-sim`, `core`) name events through these
//! constants, the `obs-analyze` trace linter validates traces against
//! [`REGISTRY`], and DESIGN.md §12 documents the same taxonomy — a
//! test in this crate checks the three agree, so a new event cannot be
//! added in one place and forgotten in the others.

/// How an event participates in the span structure of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A standalone instant event.
    Point,
    /// Opens a span; carries a `span` id field. `end` names the event
    /// that closes it.
    SpanBegin { end: &'static str },
    /// Closes a span; carries the `span` id of its begin. `begin`
    /// names the event that opened it.
    SpanEnd { begin: &'static str },
}

/// One registered event name with its structural role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSpec {
    pub name: &'static str,
    pub kind: EventKind,
}

// ── Scanner spans ──
pub const SCAN_ROUND_BEGIN: &str = "scan.round.begin";
pub const SCAN_ROUND_END: &str = "scan.round.end";
pub const SCAN_PAIR_BEGIN: &str = "scan.pair.begin";
pub const SCAN_PAIR_END: &str = "scan.pair.end";

// ── Measurement-pipeline spans and events ──
pub const TING_CIRCUIT_BEGIN: &str = "ting.circuit.begin";
pub const TING_CIRCUIT_END: &str = "ting.circuit.end";
pub const TING_PHASE: &str = "ting.phase";
pub const TING_ERROR: &str = "ting.error";
pub const TING_RETRY: &str = "ting.retry";

// ── Validation events ──
pub const VALIDATE_IMPLAUSIBLE: &str = "validate.implausible";
pub const VALIDATE_FLAG: &str = "validate.flag";
pub const VALIDATE_REJECT: &str = "validate.reject";

// ── Relay-health events ──
pub const HEALTH_QUARANTINE: &str = "health.quarantine";
pub const HEALTH_RELEASE: &str = "health.release";
pub const HEALTH_PROBE: &str = "health.probe";

// ── Network-simulator events ──
pub const NET_DELIVER: &str = "net.deliver";
pub const NET_CONN_OPENED: &str = "net.conn_opened";
pub const NET_CONN_CLOSED: &str = "net.conn_closed";
pub const NET_FAULT_EVENT_DROPPED: &str = "net.fault.event_dropped";
pub const NET_FAULT_CONNECT_BLACKHOLED: &str = "net.fault.connect_blackholed";
pub const NET_FAULT_MESSAGE_DROPPED: &str = "net.fault.message_dropped";
pub const NET_FAULT_DELAY: &str = "net.fault.delay";

// ── Tor-layer events ──
pub const TOR_RELAY_CRASH: &str = "tor.relay.crash";
pub const TOR_RELAY_REVIVE: &str = "tor.relay.revive";
pub const TOR_CHURN_DEPARTED: &str = "tor.churn.departed";
pub const TOR_CONSENSUS_REFRESH: &str = "tor.consensus.refresh";

// ── Shard-supervision spans and events ──
pub const SHARD_ROUND_BEGIN: &str = "shard.round.begin";
pub const SHARD_ROUND_END: &str = "shard.round.end";
pub const SHARD_CRASH: &str = "shard.crash";
pub const SHARD_RESTART: &str = "shard.restart";
pub const SHARD_STALL: &str = "shard.stall";
pub const SHARD_QUARANTINE: &str = "shard.quarantine";
pub const SHARD_CHECKPOINT_CORRUPT: &str = "shard.checkpoint.corrupt";

// ── Checkpoint-recovery events ──
pub const SCAN_RECOVER_BAK: &str = "scan.recover.bak";

// ── Oracle query-service names ──
// The snapshot swap is a trace event; the query-family names below it
// are counter/histogram names only — they tick at `Metrics` level on
// the query hot path and never appear in the event log.
pub const ORACLE_SNAPSHOT_SWAP: &str = "oracle.snapshot.swap";
pub const ORACLE_QUERY_POINT: &str = "oracle.query.point";
pub const ORACLE_QUERY_NEAREST: &str = "oracle.query.nearest";
pub const ORACLE_QUERY_DETOUR: &str = "oracle.query.detour";
pub const ORACLE_QUERY_UNKNOWN_NODE: &str = "oracle.query.unknown_node";
pub const ORACLE_QUERY_UNMEASURED: &str = "oracle.query.unmeasured";
pub const ORACLE_ANSWER_POINT_US: &str = "oracle.answer.point_us";
pub const ORACLE_ANSWER_NEAREST_US: &str = "oracle.answer.nearest_us";
pub const ORACLE_ANSWER_DETOUR_US: &str = "oracle.answer.detour_us";

// ── Live-pipeline spans and events ──
// The publish pair brackets one drain→journal→swap→truncate cycle;
// delta/coalesce/recover are the queue's lifecycle; the staleness
// transition fires whenever the TTL ladder moves. The counter,
// histogram, and gauge names beside them
// (`oracle.pipeline.{deltas,coalesced,published,batch_pairs,queue_depth,generation}`,
// `oracle.stale.{served_stale,refused,state}`) never enter the event
// log.
pub const ORACLE_PIPELINE_PUBLISH_BEGIN: &str = "oracle.pipeline.publish.begin";
pub const ORACLE_PIPELINE_PUBLISH_END: &str = "oracle.pipeline.publish.end";
pub const ORACLE_PIPELINE_DELTA: &str = "oracle.pipeline.delta";
pub const ORACLE_PIPELINE_COALESCE: &str = "oracle.pipeline.coalesce";
pub const ORACLE_PIPELINE_RECOVER: &str = "oracle.pipeline.recover";
pub const ORACLE_STALE_TRANSITION: &str = "oracle.stale.transition";

// ── Lineage and SLO events ──
// `lineage.pair` is the per-measurement provenance record: one point
// event per pair drained into a merge delta, carrying the shard and
// scan round that produced the estimate plus the delta seq it rode.
// The breach pair brackets one continuous SLO violation; the SLO's
// name travels in a `slo` string field so one registered event family
// covers every declared objective. The gauge family beside them
// (`slo.{name}.{good,bad,burn_milli}`) never enters the event log.
pub const LINEAGE_PAIR: &str = "lineage.pair";
pub const SLO_BREACH_BEGIN: &str = "slo.breach.begin";
pub const SLO_BREACH_END: &str = "slo.breach.end";

/// Shorthand for registry rows.
const fn point(name: &'static str) -> EventSpec {
    EventSpec {
        name,
        kind: EventKind::Point,
    }
}

const fn begin(name: &'static str, end: &'static str) -> EventSpec {
    EventSpec {
        name,
        kind: EventKind::SpanBegin { end },
    }
}

const fn end(name: &'static str, begin: &'static str) -> EventSpec {
    EventSpec {
        name,
        kind: EventKind::SpanEnd { begin },
    }
}

/// Every event name the stack may emit. The `obs-analyze` linter
/// rejects traces containing names outside this list.
pub const REGISTRY: &[EventSpec] = &[
    begin(SCAN_ROUND_BEGIN, SCAN_ROUND_END),
    end(SCAN_ROUND_END, SCAN_ROUND_BEGIN),
    begin(SCAN_PAIR_BEGIN, SCAN_PAIR_END),
    end(SCAN_PAIR_END, SCAN_PAIR_BEGIN),
    begin(TING_CIRCUIT_BEGIN, TING_CIRCUIT_END),
    end(TING_CIRCUIT_END, TING_CIRCUIT_BEGIN),
    point(TING_PHASE),
    point(TING_ERROR),
    point(TING_RETRY),
    point(VALIDATE_IMPLAUSIBLE),
    point(VALIDATE_FLAG),
    point(VALIDATE_REJECT),
    point(HEALTH_QUARANTINE),
    point(HEALTH_RELEASE),
    point(HEALTH_PROBE),
    point(NET_DELIVER),
    point(NET_CONN_OPENED),
    point(NET_CONN_CLOSED),
    point(NET_FAULT_EVENT_DROPPED),
    point(NET_FAULT_CONNECT_BLACKHOLED),
    point(NET_FAULT_MESSAGE_DROPPED),
    point(NET_FAULT_DELAY),
    point(TOR_RELAY_CRASH),
    point(TOR_RELAY_REVIVE),
    point(TOR_CHURN_DEPARTED),
    point(TOR_CONSENSUS_REFRESH),
    begin(SHARD_ROUND_BEGIN, SHARD_ROUND_END),
    end(SHARD_ROUND_END, SHARD_ROUND_BEGIN),
    point(SHARD_CRASH),
    point(SHARD_RESTART),
    point(SHARD_STALL),
    point(SHARD_QUARANTINE),
    point(SHARD_CHECKPOINT_CORRUPT),
    point(SCAN_RECOVER_BAK),
    point(ORACLE_SNAPSHOT_SWAP),
    begin(ORACLE_PIPELINE_PUBLISH_BEGIN, ORACLE_PIPELINE_PUBLISH_END),
    end(ORACLE_PIPELINE_PUBLISH_END, ORACLE_PIPELINE_PUBLISH_BEGIN),
    point(ORACLE_PIPELINE_DELTA),
    point(ORACLE_PIPELINE_COALESCE),
    point(ORACLE_PIPELINE_RECOVER),
    point(ORACLE_STALE_TRANSITION),
    point(LINEAGE_PAIR),
    begin(SLO_BREACH_BEGIN, SLO_BREACH_END),
    end(SLO_BREACH_END, SLO_BREACH_BEGIN),
];

/// Looks a name up in the registry.
pub fn spec(name: &str) -> Option<&'static EventSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate registry entry");
            }
        }
    }

    #[test]
    fn span_pairs_are_mutual() {
        for s in REGISTRY {
            match s.kind {
                EventKind::SpanBegin { end } => {
                    let e = spec(end).expect("end event registered");
                    assert_eq!(e.kind, EventKind::SpanEnd { begin: s.name });
                }
                EventKind::SpanEnd { begin } => {
                    let b = spec(begin).expect("begin event registered");
                    assert_eq!(b.kind, EventKind::SpanBegin { end: s.name });
                }
                EventKind::Point => {}
            }
        }
    }

    #[test]
    fn lookup_finds_registered_names_only() {
        assert!(spec(TING_PHASE).is_some());
        assert!(spec("ting.bogus").is_none());
    }
}
