//! Structured observability for the Ting reproduction.
//!
//! One subsystem shared by every layer of the stack — `netsim` link and
//! fault events, `tor-sim` relay/directory/controller events, and the
//! `core` measurement pipeline (orchestrator, parallel engine, scanner,
//! health, validation) — replacing the ad-hoc counters that grew up
//! alongside each crate. Three ideas:
//!
//! - **A registry** of named monotone counters, gauges, and
//!   log-bucketed latency histograms ([`hist::LogHistogram`]) behind a
//!   cheap clonable [`Obs`] handle. Hot paths pre-resolve [`Counter`]
//!   and [`Hist`] handles once so the per-event cost is a null check
//!   and a `Cell` bump, not a map lookup.
//! - **Virtual-time events and spans** keyed to the simulator clock:
//!   scan round → pair measurement → circuit phase → cell hop. Only
//!   recorded under [`ObsConfig::Trace`].
//! - **A deterministic JSONL exporter** ([`Obs::export_jsonl`]) keyed
//!   by seed + config hash, producing byte-identical documents for
//!   identical seeded runs — the golden-trace contract the determinism
//!   tests pin.
//!
//! [`ObsConfig::Off`] is the default and compiles down to a `None`
//! check on every path; an `Off` run is enforced (by test) to be
//! bit-identical to a run of the pre-observability code.

pub mod export;
pub mod hist;
pub mod lineage;
pub mod measure;
pub mod names;
pub mod slo;

pub use export::{
    config_hash, fnv1a64, mode_name, Document, EventRecord, ExportMeta, HistRecord, HistSummary,
    FORMAT,
};
pub use hist::LogHistogram;
pub use lineage::{Lineage, Origin};
pub use measure::{MeasurementMetrics, MeasurementSnapshot};
pub use slo::{SloEngine, SloSpec, SloTotals, WindowSpec};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// How much the observability layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsConfig {
    /// Record nothing; every instrumentation site is a null check.
    #[default]
    Off,
    /// Counters, gauges, and histograms — the ≤5% overhead budget.
    Metrics,
    /// Metrics plus the full event/span log (unbounded memory; for
    /// tests and trace capture, not long soaks).
    Trace,
}

/// A dynamically-typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

/// One recorded event: a name, the virtual-time instant in
/// nanoseconds, and a small set of key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub t_ns: u64,
    pub name: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

/// Identifies one span across its `begin`/`end` event pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) config: ObsConfig,
    pub(crate) counters: RefCell<BTreeMap<String, Rc<Cell<u64>>>>,
    pub(crate) gauges: RefCell<BTreeMap<String, i64>>,
    pub(crate) hists: RefCell<BTreeMap<String, Rc<RefCell<LogHistogram>>>>,
    pub(crate) events: RefCell<Vec<Event>>,
    next_span: Cell<u64>,
}

/// The observability handle. Cloning shares the registry; the `Off`
/// handle holds no registry at all, so the disabled path costs one
/// branch per site.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Rc<Inner>>,
}

/// A pre-resolved counter handle for hot paths: resolve once by name,
/// then each [`Counter::inc`] is a null check plus a `Cell` bump.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Rc<Cell<u64>>>,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.set(cell.get() + n);
        }
    }
}

/// A pre-resolved histogram handle for hot paths.
#[derive(Debug, Clone, Default)]
pub struct Hist {
    hist: Option<Rc<RefCell<LogHistogram>>>,
}

impl Hist {
    /// Records a duration given in integer microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        if let Some(h) = &self.hist {
            h.borrow_mut().record(us);
        }
    }

    /// Records a duration given in (possibly fractional) milliseconds.
    #[inline]
    pub fn record_ms(&self, ms: f64) {
        if self.hist.is_some() {
            self.record_us(ms_to_us(ms));
        }
    }
}

/// Converts a millisecond duration to the integer microseconds the
/// histograms record, saturating deterministically at both ends: NaN
/// and negative inputs clamp to 0, while +∞ and any finite value
/// whose microsecond count exceeds `u64::MAX` clamp to `u64::MAX` —
/// a histogram must never panic or wrap on a weird measurement.
#[inline]
pub fn ms_to_us(ms: f64) -> u64 {
    if ms.is_nan() || ms <= 0.0 {
        return 0;
    }
    let us = (ms * 1000.0).round();
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us as u64
    }
}

impl Obs {
    /// The disabled handle — records nothing, allocates nothing.
    pub fn off() -> Obs {
        Obs { inner: None }
    }

    /// A handle with a fresh registry at the given recording level.
    /// `ObsConfig::Off` yields the same no-op handle as [`Obs::off`].
    pub fn new(config: ObsConfig) -> Obs {
        match config {
            ObsConfig::Off => Obs::off(),
            _ => Obs {
                inner: Some(Rc::new(Inner {
                    config,
                    ..Inner::default()
                })),
            },
        }
    }

    /// True when metrics (counters/gauges/histograms) are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when the event/span log is recorded. Guard any field
    /// construction for [`Obs::event`] behind this on hot paths.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        matches!(
            self.inner.as_deref(),
            Some(Inner {
                config: ObsConfig::Trace,
                ..
            })
        )
    }

    /// Resolves (creating on first use) a counter by name.
    pub fn counter_handle(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                Rc::clone(
                    inner
                        .counters
                        .borrow_mut()
                        .entry(name.to_owned())
                        .or_default(),
                )
            }),
        }
    }

    /// One-shot counter bump by name — fine off the hot path.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// One-shot counter add by name — fine off the hot path.
    pub fn add(&self, name: &str, n: u64) {
        if self.inner.is_some() {
            self.counter_handle(name).add(n);
        }
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.gauges.borrow_mut().insert(name.to_owned(), value);
        }
    }

    /// Resolves (creating on first use) a histogram by name.
    pub fn hist_handle(&self, name: &str) -> Hist {
        Hist {
            hist: self.inner.as_ref().map(|inner| {
                Rc::clone(inner.hists.borrow_mut().entry(name.to_owned()).or_default())
            }),
        }
    }

    /// One-shot histogram record by name — fine off the hot path.
    pub fn record_ms(&self, name: &str, ms: f64) {
        if self.inner.is_some() {
            self.hist_handle(name).record_ms(ms);
        }
    }

    /// Appends an event to the trace log (no-op unless tracing).
    pub fn event(&self, name: &'static str, t_ns: u64, fields: Vec<(&'static str, Value)>) {
        if let Some(inner) = &self.inner {
            if inner.config == ObsConfig::Trace {
                inner.events.borrow_mut().push(Event { t_ns, name, fields });
            }
        }
    }

    /// Opens a span: emits the given `*.begin` event carrying a fresh
    /// span id plus `fields`, and returns the id to pass to
    /// [`Obs::span_end`]. Span ids are allocated even when not tracing
    /// so begin/end pairing stays consistent across modes.
    pub fn span_begin(
        &self,
        begin_name: &'static str,
        t_ns: u64,
        mut fields: Vec<(&'static str, Value)>,
    ) -> SpanId {
        let id = match &self.inner {
            Some(inner) => {
                let id = inner.next_span.get();
                inner.next_span.set(id + 1);
                id
            }
            None => 0,
        };
        fields.insert(0, ("span", Value::U64(id)));
        self.event(begin_name, t_ns, fields);
        SpanId(id)
    }

    /// Closes a span: emits the given `*.end` event carrying the span
    /// id plus `fields`.
    pub fn span_end(
        &self,
        end_name: &'static str,
        span: SpanId,
        t_ns: u64,
        mut fields: Vec<(&'static str, Value)>,
    ) {
        fields.insert(0, ("span", Value::U64(span.0)));
        self.event(end_name, t_ns, fields);
    }

    /// The current value of a counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|inner| inner.counters.borrow().get(name).map(|c| c.get()))
            .unwrap_or(0)
    }

    /// All counters with their current values.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .as_ref()
            .map(|inner| {
                inner
                    .counters
                    .borrow()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// A copy of a named histogram, when it exists.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.hists.borrow().get(name).map(|h| h.borrow().clone()))
    }

    /// A copy of the event log so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|inner| inner.events.borrow().clone())
            .unwrap_or_default()
    }

    /// Snapshots the registry into the parser-facing export model
    /// (see [`export::Document`]). The disabled handle yields an empty
    /// document.
    pub fn document(&self, meta: &ExportMeta) -> Document {
        match &self.inner {
            Some(inner) => Document::from_registry(inner, meta),
            None => {
                let off = Inner::default();
                Document::from_registry(&off, meta)
            }
        }
    }

    /// Renders the registry as deterministic JSONL (see [`export`]).
    /// The disabled handle exports just the meta header.
    pub fn export_jsonl(&self, meta: &ExportMeta) -> String {
        self.document(meta).render_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        assert!(!obs.is_tracing());
        let c = obs.counter_handle("x");
        c.inc();
        assert_eq!(obs.counter_value("x"), 0);
        obs.record_ms("h", 3.5);
        assert!(obs.histogram("h").is_none());
        obs.event("e", 1, vec![]);
        assert!(obs.events().is_empty());
        assert!(!Obs::new(ObsConfig::Off).is_enabled());
    }

    #[test]
    fn metrics_mode_counts_but_does_not_trace() {
        let obs = Obs::new(ObsConfig::Metrics);
        assert!(obs.is_enabled());
        assert!(!obs.is_tracing());
        let c = obs.counter_handle("ting.retry");
        c.inc();
        c.add(2);
        obs.inc("ting.retry");
        assert_eq!(obs.counter_value("ting.retry"), 4);
        obs.record_ms("phase.build", 2.0);
        assert_eq!(obs.histogram("phase.build").unwrap().count(), 1);
        obs.event("ignored", 5, vec![]);
        assert!(obs.events().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::new(ObsConfig::Metrics);
        let other = obs.clone();
        other.inc("shared");
        assert_eq!(obs.counter_value("shared"), 1);
    }

    #[test]
    fn spans_pair_up_in_the_event_log() {
        let obs = Obs::new(ObsConfig::Trace);
        let s = obs.span_begin("scan.round.begin", 10, vec![("planned", Value::U64(3))]);
        obs.span_end("scan.round.end", s, 99, vec![("measured", Value::U64(2))]);
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "scan.round.begin");
        assert_eq!(events[0].fields[0], ("span", Value::U64(s.0)));
        assert_eq!(events[1].name, "scan.round.end");
        assert_eq!(events[1].t_ns, 99);
    }

    #[test]
    fn export_is_ordered_and_reproducible() {
        let build = |_| {
            let obs = Obs::new(ObsConfig::Trace);
            obs.inc("b.counter");
            obs.inc("a.counter");
            obs.set_gauge("g", -4);
            obs.record_ms("lat", 1.25);
            obs.event("e", 7, vec![("k", Value::Str("v\"x".into()))]);
            obs.export_jsonl(&ExportMeta {
                seed: 2015,
                config_hash: config_hash("cfg"),
            })
        };
        let a = build(0);
        assert_eq!(a, build(1), "same registry must export identically");
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("\"format\":\"ting-obs-v1\""));
        assert!(lines[0].contains("\"mode\":\"trace\""));
        assert!(lines[1].contains("\"counter\":\"a.counter\""));
        assert!(lines[2].contains("\"counter\":\"b.counter\""));
        assert!(lines[3].contains("\"gauge\":\"g\",\"value\":-4"));
        assert!(lines[4].contains("\"hist\":\"lat\""));
        assert!(lines[4].contains("\"count\":1,\"min\":1250"));
        assert!(lines[5].contains("\"event\":\"e\",\"t_ns\":7,\"k\":\"v\\\"x\""));
    }

    #[test]
    fn ms_to_us_clamps_garbage() {
        assert_eq!(ms_to_us(1.5), 1500);
        assert_eq!(ms_to_us(0.0004), 0);
        assert_eq!(ms_to_us(-3.0), 0);
        assert_eq!(ms_to_us(f64::NAN), 0);
        assert_eq!(ms_to_us(f64::NEG_INFINITY), 0);
        // Too big for u64 microseconds: saturate high, don't wrap.
        assert_eq!(ms_to_us(f64::INFINITY), u64::MAX);
        assert_eq!(ms_to_us(f64::MAX), u64::MAX);
        assert_eq!(ms_to_us(2e16), u64::MAX); // 2e19 µs > u64::MAX
        assert_eq!(ms_to_us(1e15), 1_000_000_000_000_000_000); // still exact
    }
}
