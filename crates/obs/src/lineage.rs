//! Measurement lineage: the causal identity of one cached RTT.
//!
//! Every estimate the scanner accepts is minted a [`Lineage`] — the
//! shard that ran the probe and the scan round that produced it. The
//! id rides the whole write path: pair measurement → scanner
//! checkpoint (v3) → `Supervisor::take_delta` delta → merged document
//! (v2) → journal record → published snapshot. The serving layer then
//! joins it with the publish generation into an [`Origin`], so every
//! served answer can name the exact probe, shard, and generation that
//! produced it — the audit trail `ting-prof lineage` walks.
//!
//! Lineage is plain data: tracking it changes no scheduling, no
//! arithmetic, and no event stream, so an [`crate::ObsConfig::Off`]
//! run stays bit-identical to a pre-lineage one.

/// The provenance of one accepted pair measurement: which shard's
/// scanner measured it, in which of that scanner's scan rounds.
///
/// Round numbers start at 1; round 0 means "unknown" — the measurement
/// predates lineage tracking (a v1/v2 checkpoint or a v1 merged
/// document loaded for compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Lineage {
    /// The shard whose scanner accepted the measurement.
    pub shard: u32,
    /// That scanner's round counter when the estimate was cached
    /// (1-based; 0 = unknown/legacy).
    pub round: u64,
}

impl Lineage {
    /// A lineage with unknown provenance (legacy data).
    pub const UNKNOWN: Lineage = Lineage { shard: 0, round: 0 };

    /// True when the lineage carries real provenance (round ≥ 1).
    pub fn is_known(&self) -> bool {
        self.round > 0
    }
}

/// The full origin triple a served answer cites: the measurement's
/// [`Lineage`] joined with the publish generation that carried it into
/// the serving snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Origin {
    pub shard: u32,
    pub round: u64,
    /// The snapshot generation (== oracle version == journal record)
    /// the answer was served from.
    pub generation: u64,
}

impl Origin {
    /// Joins a lineage with the generation it was served under.
    pub fn of(lineage: Lineage, generation: u64) -> Origin {
        Origin {
            shard: lineage.shard,
            round: lineage.round,
            generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_lineage_is_round_zero() {
        assert!(!Lineage::UNKNOWN.is_known());
        assert!(Lineage { shard: 3, round: 1 }.is_known());
        assert_eq!(Lineage::default(), Lineage::UNKNOWN);
    }

    #[test]
    fn origin_joins_lineage_and_generation() {
        let o = Origin::of(Lineage { shard: 2, round: 9 }, 41);
        assert_eq!(
            o,
            Origin {
                shard: 2,
                round: 9,
                generation: 41
            }
        );
    }
}
