//! DESIGN.md §12 and `obs::names::REGISTRY` must list the same event
//! taxonomy: every registered name appears in the §12 span-taxonomy
//! list, and every event-shaped name §12 mentions is registered. A new
//! event added to one without the other fails here.

use std::collections::BTreeSet;

/// The §12 section body: from its heading to the next `## ` heading.
fn design_section_12() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let text = std::fs::read_to_string(path).expect("DESIGN.md readable");
    let start = text
        .find("## 12. Observability")
        .expect("DESIGN.md has a §12 Observability section");
    let body = &text[start..];
    let end = body[4..].find("\n## ").map_or(body.len(), |i| i + 4);
    body[..end].to_owned()
}

/// Backticked tokens in `text` that look like event names: lowercase
/// dotted identifiers, no wildcards/placeholders/paths.
fn event_shaped_names(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for piece in text.split('`').skip(1).step_by(2) {
        let dotted = piece.contains('.');
        let plain = piece
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_');
        if dotted && plain && !piece.starts_with('.') && !piece.ends_with('.') {
            out.insert(piece.to_owned());
        }
    }
    out
}

#[test]
fn design_section_12_and_registry_agree() {
    let section = design_section_12();
    let documented = event_shaped_names(&section);
    let registered: BTreeSet<String> = obs::names::REGISTRY
        .iter()
        .map(|s| s.name.to_owned())
        .collect();

    // Some §12 prose names metric families, not events; those are
    // either wildcarded (excluded by shape) or counter names that never
    // appear in the event log. Anything else must be registered.
    let undocumented: Vec<_> = registered.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "registered events missing from DESIGN.md §12: {undocumented:?}"
    );
    let unregistered: Vec<_> = documented
        .difference(&registered)
        .filter(|n| obs::names::spec(n).is_none())
        .collect();
    assert!(
        unregistered.is_empty(),
        "DESIGN.md §12 names events not in obs::names::REGISTRY: {unregistered:?}"
    );
}
