//! Property tests for the log-bucketed histogram and the `ms_to_us`
//! clamp in front of it.
//!
//! The scanner's per-phase statistics depend on four algebraic
//! guarantees: merge is associative and commutative, counts are
//! conserved when a recording stream is split across histograms and
//! merged back, every bucket brackets the values it absorbed, and
//! quantiles are monotone in the requested rank. `ms_to_us` must
//! additionally never panic, saturate deterministically at both ends,
//! and stay monotone so ordering survives the unit conversion.

use obs::{ms_to_us, LogHistogram};
use proptest::prelude::*;

fn hist_of(grouping_bits: u32, values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new(grouping_bits);
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
        c in proptest::collection::vec(any::<u64>(), 0..40),
        g in 1u32..=10,
    ) {
        let (ha, hb, hc) = (hist_of(g, &a), hist_of(g, &b), hist_of(g, &c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ∪ b == b ∪ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
    }

    #[test]
    fn counts_conserved_under_split_and_merge(
        values in proptest::collection::vec(any::<u64>(), 1..80),
        split in any::<usize>(),
        g in 1u32..=10,
    ) {
        let at = split % values.len();
        let mut merged = hist_of(g, &values[..at]);
        merged.merge(&hist_of(g, &values[at..]));
        let whole = hist_of(g, &values);
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.sum(), values.iter().map(|&v| u128::from(v)).sum::<u128>());
    }

    #[test]
    fn bucket_bounds_bracket_recorded_values(v in any::<u64>(), g in 1u32..=16) {
        let h = LogHistogram::new(g);
        let (lo, hi) = h.bucket_bounds(h.index_of(v));
        prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
        // Relative error bound: bucket width ≤ 2^-g · lo.
        prop_assert!(hi - lo <= lo >> g, "bucket [{}, {}] too wide for g={}", lo, hi, g);
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(any::<u64>(), 1..80),
        qs in proptest::collection::vec(0.0f64..1.0, 2..8),
        g in 1u32..=10,
    ) {
        let h = hist_of(g, &values);
        let mut sorted_qs = qs;
        sorted_qs.push(1.0); // always exercise the endpoint
        sorted_qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut last = None;
        for &q in &sorted_qs {
            let quantile = h.quantile(q).unwrap();
            prop_assert!(quantile >= h.min().unwrap() && quantile <= h.max().unwrap());
            if let Some(prev) = last {
                prop_assert!(quantile >= prev, "quantile({}) = {} < {}", q, quantile, prev);
            }
            last = Some(quantile);
        }
    }

    /// Any bit pattern — NaN, ±∞, subnormals, negatives — converts
    /// without panicking, and garbage lands on the deterministic
    /// clamp values.
    #[test]
    fn ms_to_us_total_on_all_bit_patterns(bits in any::<u64>()) {
        let ms = f64::from_bits(bits);
        let us = ms_to_us(ms);
        if ms.is_nan() || ms <= 0.0 {
            prop_assert_eq!(us, 0);
        } else if ms >= 2e16 {
            // 2e16 ms = 2e19 µs > u64::MAX µs: must saturate high.
            prop_assert_eq!(us, u64::MAX);
        }
        // Recording the result must never panic either.
        let mut h = LogHistogram::new(5);
        h.record(us);
        prop_assert_eq!(h.count(), 1);
    }

    /// Monotone: a longer duration never converts to fewer µs, so
    /// histogram ordering survives the unit conversion.
    #[test]
    fn ms_to_us_is_monotone(a in any::<f64>(), b in any::<f64>()) {
        if a.is_nan() || b.is_nan() {
            prop_assert_eq!(ms_to_us(f64::NAN), 0);
        } else {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(ms_to_us(lo) <= ms_to_us(hi));
        }
    }

    /// In the exact integer range, the conversion is the plain
    /// ×1000 the histograms expect.
    #[test]
    fn ms_to_us_scales_exact_integers(ms in 1u32..=1_000_000) {
        prop_assert_eq!(ms_to_us(f64::from(ms)), u64::from(ms) * 1000);
    }
}
