//! Umbrella crate for the Ting reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use
//! a single dependency. See the individual crates for documentation:
//! [`ting`] (the measurement technique), [`tor_sim`] (the simulated Tor
//! overlay), [`netsim`] (the discrete-event underlay), and [`analysis`]
//! (the paper's Section 5 applications).

pub use analysis;
pub use geo;
pub use netsim;
pub use onion_crypto;
pub use stats;
pub use ting;
pub use tor_protocol;
pub use tor_sim;
