//! Integration tests pinning the paper's qualitative results — the
//! "shape" claims every figure regeneration depends on.

use ting::{Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

/// §3.2: mixing Tor and ping measurements is unreliable on networks
/// that discriminate by protocol; Ting is not (its probes never leave
/// Tor).
#[test]
fn ting_immune_to_protocol_discrimination() {
    let mut net = TorNetworkBuilder::testbed(91).neutral_fraction(1.0).build();
    let (x, y) = (net.relays[6], net.relays[22]);
    let ting = Ting::new(TingConfig::with_samples(60));
    let before = ting.measure_pair(&mut net, x, y).unwrap().estimate_ms();
    // Turn on aggressive ICMP deprioritization at x's network.
    let x_as = net.sim.underlay().node(x.index()).as_id;
    net.sim.underlay_mut().as_profile_mut(x_as).policy =
        netsim::ProtocolPolicy::icmp_deprioritized(50.0);
    let after = ting.measure_pair(&mut net, x, y).unwrap().estimate_ms();
    assert!(
        (after - before).abs() < 5.0,
        "Ting moved {before} -> {after} under an ICMP-only policy change"
    );
}

/// §4.4: sample minima converge — more samples never hurt, and a few
/// dozen samples land within a few percent of the 1000-sample result.
#[test]
fn sample_count_convergence() {
    let mut net = TorNetworkBuilder::testbed(92).build();
    let (x, y) = (net.relays[8], net.relays[27]);
    let m_low = Ting::new(TingConfig::with_samples(40))
        .measure_pair(&mut net, x, y)
        .unwrap();
    let m_high = Ting::new(TingConfig::with_samples(400))
        .measure_pair(&mut net, x, y)
        .unwrap();
    // Minima only decrease with more samples on the same circuits;
    // across circuits the estimates must agree within a few percent.
    let rel = (m_low.estimate_ms() - m_high.estimate_ms()).abs() / m_high.estimate_ms();
    assert!(rel < 0.10, "40-sample vs 400-sample disagree by {rel}");
}

/// §5.2.1: the underlay produces genuine triangle-inequality
/// violations observable through Ting's measured matrix.
#[test]
fn tivs_exist_and_are_exploitable() {
    let mut net = TorNetworkBuilder::live(93, 60).build();
    let nodes: Vec<_> = net.relays.iter().copied().take(14).collect();
    let ting = Ting::new(TingConfig::fast());
    let matrix = ting::RttMatrix::measure(&mut net, nodes, &ting, |_, _| {}).unwrap();
    let report = analysis::TivReport::analyze(&matrix);
    assert!(
        report.violation_fraction() > 0.05,
        "only {:.0}% of pairs have TIVs",
        report.violation_fraction() * 100.0
    );
    // Each detour, if taken as a real circuit leg, genuinely beats the
    // direct path per the same measured data.
    for f in report.findings.iter().filter(|f| f.is_violation()).take(5) {
        let via =
            matrix.get(f.src, f.best_relay).unwrap() + matrix.get(f.best_relay, f.dst).unwrap();
        assert!(via < f.direct_ms);
    }
}

/// §5.1: RTT knowledge can only help deanonymization (never increases
/// the median probe count), and the informed strategy helps most.
#[test]
fn deanonymization_ordering() {
    let mut net = TorNetworkBuilder::live(94, 70).build();
    let nodes: Vec<_> = net.relays.iter().copied().take(20).collect();
    let ting = Ting::new(TingConfig::fast());
    let matrix = ting::RttMatrix::measure(&mut net, nodes, &ting, |_, _| {}).unwrap();
    let sim = analysis::DeanonSimulator::new(&matrix);
    use rand::SeedableRng;
    let rng = rand::rngs::SmallRng::seed_from_u64(9);
    let med = |s| {
        let o = sim.run_many(s, 300, &mut rng.clone());
        let f: Vec<f64> = o.iter().map(|x| x.fraction_probed()).collect();
        stats::median(&f).unwrap()
    };
    let unaware = med(analysis::Strategy::RttUnaware);
    let ignore = med(analysis::Strategy::IgnoreTooLarge);
    let informed = med(analysis::Strategy::Informed);
    assert!(ignore <= unaware + 0.02, "{ignore} vs {unaware}");
    assert!(informed <= ignore + 0.02, "{informed} vs {ignore}");
    assert!(informed < unaware, "no net gain: {informed} vs {unaware}");
}

/// §5.2.2: longer circuits can achieve the same RTT band as 3-hop
/// circuits, with more absolute options.
#[test]
fn longer_circuits_offer_more_options() {
    let mut net = TorNetworkBuilder::live(95, 60).build();
    let nodes: Vec<_> = net.relays.iter().copied().take(16).collect();
    let ting = Ting::new(TingConfig::fast());
    let matrix = ting::RttMatrix::measure(&mut net, nodes, &ting, |_, _| {}).unwrap();
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
    let analysis = analysis::CircuitLengthAnalysis::run(&matrix, [3, 4], 8000, 3.0, &mut rng);
    // Find the 3-hop median band and compare option counts.
    let s3 = &analysis.series[0];
    let total: f64 = s3.scaled_counts.iter().sum();
    let mut acc = 0.0;
    let mut band = 0.0;
    for (c, v) in s3.bin_centers_s.iter().zip(&s3.scaled_counts) {
        acc += v;
        if acc >= total / 2.0 {
            band = *c;
            break;
        }
    }
    let c3 = analysis.circuits_in_range(3, band - 0.05, band + 0.05);
    let c4 = analysis.circuits_in_range(4, band - 0.05, band + 0.05);
    assert!(
        c4 > c3,
        "4-hop options {c4} <= 3-hop {c3} in the median band"
    );
}
