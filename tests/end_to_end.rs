//! Full-stack integration tests: underlay → Tor overlay → Ting →
//! applications, all through the public API.

use ting::{RttMatrix, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

/// The headline claim, end to end: Ting measures a pair of simulated
/// Tor relays to within the paper's tolerance of ground truth, using
/// nothing but circuits and echoes.
#[test]
fn ting_measures_pairs_accurately() {
    let mut net = TorNetworkBuilder::testbed(1001).build();
    let ting = Ting::new(TingConfig::with_samples(100));
    let mut within10 = 0;
    let mut total = 0;
    for (i, j) in [(0usize, 16usize), (2, 25), (5, 30), (9, 20), (12, 28)] {
        let (x, y) = (net.relays[i], net.relays[j]);
        let truth = net.true_rtt_ms(x, y);
        let est = ting.measure_pair(&mut net, x, y).unwrap().estimate_ms();
        total += 1;
        if (est / truth - 1.0).abs() < 0.10 {
            within10 += 1;
        }
        // Hard bound: never grossly wrong.
        assert!(
            (est / truth - 1.0).abs() < 0.5,
            "pair ({i},{j}): est {est} truth {truth}"
        );
    }
    assert!(within10 >= 3, "only {within10}/{total} within 10%");
}

/// Determinism: identical seeds give identical measurements, bit for
/// bit — the property every experiment's reproducibility rests on.
#[test]
fn identical_seeds_identical_measurements() {
    let run = || {
        let mut net = TorNetworkBuilder::testbed(77).build();
        let (x, y) = (net.relays[4], net.relays[21]);
        let m = Ting::new(TingConfig::with_samples(25))
            .measure_pair(&mut net, x, y)
            .unwrap();
        (m.estimate_ms(), m.full.samples.clone())
    };
    let (e1, s1) = run();
    let (e2, s2) = run();
    assert_eq!(e1, e2);
    assert_eq!(s1, s2);
}

/// Different seeds give a *different* network (no accidental constant
/// world).
#[test]
fn different_seeds_differ() {
    let truth = |seed: u64| {
        let mut net = TorNetworkBuilder::testbed(seed).build();
        let (x, y) = (net.relays[0], net.relays[1]);
        net.true_rtt_ms(x, y)
    };
    assert_ne!(truth(1), truth(2));
}

/// A small all-pairs matrix built through the real pipeline feeds the
/// §5 applications.
#[test]
fn matrix_feeds_applications() {
    let mut net = TorNetworkBuilder::live(55, 40).build();
    let nodes: Vec<_> = net.relays.iter().copied().take(10).collect();
    let ting = Ting::new(TingConfig::fast());
    let matrix = RttMatrix::measure(&mut net, nodes, &ting, |_, _| {}).unwrap();
    assert!(matrix.is_complete());

    // TIV analysis runs and respects its own invariants.
    let tiv = analysis::TivReport::analyze(&matrix);
    for f in &tiv.findings {
        assert!(f.best_detour_ms > 0.0);
        if f.is_violation() {
            assert!(f.best_detour_ms < f.direct_ms);
        }
    }

    // Deanonymization always terminates and finds the circuit.
    let sim = analysis::DeanonSimulator::new(&matrix);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    use rand::SeedableRng;
    for strategy in [
        analysis::Strategy::RttUnaware,
        analysis::Strategy::IgnoreTooLarge,
        analysis::Strategy::Informed,
    ] {
        for _ in 0..20 {
            let o = sim.run_once(strategy, &mut rng);
            assert!(o.probes >= 2 && o.probes <= o.universe);
        }
    }
}

/// Ting's estimates and ping-based ground truth agree in rank order
/// (the Spearman headline) even on the live-like network.
#[test]
fn rank_order_agreement_live_network() {
    let mut net = TorNetworkBuilder::live(60, 50).build();
    let ting = Ting::new(TingConfig::with_samples(60));
    let mut est = Vec::new();
    let mut truth = Vec::new();
    for k in 0..8 {
        let (x, y) = (net.relays[k], net.relays[k + 20]);
        truth.push(net.true_rtt_ms(x, y));
        est.push(ting.measure_pair(&mut net, x, y).unwrap().estimate_ms());
    }
    let rho = stats::spearman(&est, &truth).unwrap();
    assert!(rho > 0.9, "rank correlation {rho}");
}

/// The §4.6 caching story: measure once, save, reload, and the §5
/// analyses see the same data.
#[test]
fn matrix_tsv_cache_roundtrip() {
    let mut net = TorNetworkBuilder::live(70, 30).build();
    let nodes: Vec<_> = net.relays.iter().copied().take(8).collect();
    let ting = Ting::new(TingConfig::fast());
    let matrix = RttMatrix::measure(&mut net, nodes, &ting, |_, _| {}).unwrap();
    let reloaded = RttMatrix::from_tsv(&matrix.to_tsv()).unwrap();
    assert_eq!(reloaded, matrix);
    assert_eq!(
        analysis::TivReport::analyze(&reloaded).violation_fraction(),
        analysis::TivReport::analyze(&matrix).violation_fraction()
    );
}

/// Forwarding-delay measurements stay sane across probe protocols on a
/// fully neutral network (§4.3's sanity case).
#[test]
fn forwarding_delay_probe_protocols_agree_when_neutral() {
    let mut net = TorNetworkBuilder::testbed(88).neutral_fraction(1.0).build();
    let ting = Ting::new(TingConfig::with_samples(40));
    let x = net.relays[10];
    let icmp =
        ting::measure_forwarding_delay(&ting, &mut net, x, ting::ProbeProtocol::Icmp, 40).unwrap();
    let tcp =
        ting::measure_forwarding_delay(&ting, &mut net, x, ting::ProbeProtocol::Tcp, 40).unwrap();
    assert!(
        (icmp.f_x_ms - tcp.f_x_ms).abs() < 3.0,
        "icmp {} tcp {}",
        icmp.f_x_ms,
        tcp.f_x_ms
    );
}

/// Churn + coverage pipeline from the umbrella crate.
#[test]
fn churn_coverage_pipeline() {
    let mut model = tor_sim::churn::ChurnModel::new(tor_sim::churn::ChurnConfig::default(), 5);
    let series = model.run(14);
    assert_eq!(series.len(), 14);
    let report = analysis::CoverageReport::analyze(model.relays());
    assert!(report.unique_slash24 > 0);
    assert!(report.residential > 0);
    assert!(report.named <= report.total_relays);
}
