//! Quickstart: measure the RTT between two Tor relays with Ting.
//!
//! Builds a PlanetLab-like simulated Tor network, picks a pair of
//! relays, runs the full Ting procedure (the three circuits of Fig. 2),
//! and compares the estimate against the underlay's ground truth and a
//! ping-based measurement.
//!
//! Run with: `cargo run --release --example quickstart`

use ting::{Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    // A deterministic 31-relay validation testbed (paper §4.1).
    let mut net = TorNetworkBuilder::testbed(2015).build();
    println!(
        "built a simulated Tor network: {} relays + measurement host (w, z, echo)",
        net.relays.len()
    );

    let (x, y) = (net.relays[4], net.relays[27]);
    println!("measuring relay pair x={:?}, y={:?}", x, y);

    // Ting with the paper's 200-sample setting.
    let ting = Ting::new(TingConfig::with_samples(200));
    let m = ting.measure_pair(&mut net, x, y).expect("measurement");

    let truth = net.true_rtt_ms(x, y);
    let ping = net.ping_min_rtt_ms(x, y, 100);
    let est = m.estimate_ms();

    println!();
    println!(
        "circuit C_xy=(w,x,y,z) min RTT : {:9.3} ms  ({} samples)",
        m.full.min_ms(),
        m.full.len()
    );
    println!(
        "circuit C_x =(w,x)     min RTT : {:9.3} ms  ({} samples)",
        m.x_leg.min_ms(),
        m.x_leg.len()
    );
    println!(
        "circuit C_y =(w,y)     min RTT : {:9.3} ms  ({} samples)",
        m.y_leg.min_ms(),
        m.y_leg.len()
    );
    println!();
    println!("Ting estimate (Eq. 4)          : {est:9.3} ms");
    println!("ground truth (underlay)        : {truth:9.3} ms");
    println!("direct ping  (min of 100)      : {ping:9.3} ms");
    println!(
        "relative error vs ground truth : {:8.2}%",
        (est / truth - 1.0) * 100.0
    );
    println!("virtual measurement time       : {:8.1} s", m.elapsed_s);

    // The fast preset: §4.4's "under 15 seconds per pair" trade-off.
    let fast = Ting::new(TingConfig::fast())
        .measure_pair(&mut net, x, y)
        .expect("fast measurement");
    println!();
    println!(
        "fast preset: {:.3} ms with {} samples in {:.1} s (vs {:.3} ms accurate)",
        fast.estimate_ms(),
        fast.total_samples(),
        fast.elapsed_s,
        est
    );
}
