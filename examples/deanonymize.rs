//! Deanonymizing Tor circuits faster with all-pairs RTT data (§5.1).
//!
//! Simulates the destination-side attacker of §5.1.1 over an all-pairs
//! matrix and compares the probe cost of the three strategies — the
//! experiment behind Fig. 12 (paper medians: 72% / 62% / 48% of the
//! network probed).
//!
//! Run with: `cargo run --release --example deanonymize`

use analysis::{DeanonSimulator, Strategy};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stats::EmpiricalCdf;
use ting::{RttMatrix, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    // Measure a compact all-pairs matrix with Ting. (The paper used 50
    // relays; we use fewer so the example finishes in seconds — the
    // fig12 bench binary runs the full-size version.)
    let mut net = TorNetworkBuilder::live(23, 40).build();
    let subset: Vec<_> = net.relays.iter().copied().take(16).collect();
    println!(
        "measuring {}-relay all-pairs matrix with Ting...",
        subset.len()
    );
    let ting = Ting::new(TingConfig::fast());
    let matrix = RttMatrix::measure(&mut net, subset, &ting, |_, _| {}).expect("matrix");

    let sim = DeanonSimulator::new(&matrix);
    let mut rng = SmallRng::seed_from_u64(99);
    let runs = 1000;
    println!("simulating {runs} circuit deanonymizations per strategy\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8}",
        "strategy", "p25", "median", "p75"
    );

    let mut medians = Vec::new();
    for (name, strategy) in [
        ("RTT-unaware brute force", Strategy::RttUnaware),
        ("ignore too-large RTTs", Strategy::IgnoreTooLarge),
        ("+ informed target selection", Strategy::Informed),
    ] {
        let outcomes = sim.run_many(strategy, runs, &mut rng);
        let fracs: Vec<f64> = outcomes.iter().map(|o| o.fraction_probed()).collect();
        let cdf = EmpiricalCdf::new(&fracs);
        println!(
            "{:<28} {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            cdf.quantile(0.25) * 100.0,
            cdf.median() * 100.0,
            cdf.quantile(0.75) * 100.0
        );
        medians.push(cdf.median());
    }

    println!(
        "\nspeedup of informed selection over brute force: {:.2}x (paper: ~1.5x)",
        medians[0] / medians[2]
    );
}
