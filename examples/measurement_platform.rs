//! Tor as a measurement platform: coverage over time (§5.3, Fig. 18).
//!
//! Runs the relay-population churn model for two months and reports the
//! coverage statistics the paper uses to argue Ting's viability as an
//! Internet measurement platform: unique /24 prefixes, rDNS coverage,
//! and the residential/datacenter split.
//!
//! Run with: `cargo run --release --example measurement_platform`

use analysis::CoverageReport;
use tor_sim::churn::{ChurnConfig, ChurnModel};

fn main() {
    let mut model = ChurnModel::new(ChurnConfig::default(), 2015);

    println!("simulating 60 days of relay churn (Fig. 18)...\n");
    println!("{:>5} {:>14} {:>14}", "day", "running", "unique /24s");
    let series = model.run(60);
    for snap in series.iter().step_by(10) {
        println!(
            "{:>5} {:>14} {:>14}",
            snap.day, snap.running_relays, snap.unique_slash24
        );
    }
    let last = series.last().unwrap();
    println!(
        "{:>5} {:>14} {:>14}   (paper range: 5426-6044 /24s)",
        last.day, last.running_relays, last.unique_slash24
    );

    // Host-type coverage on the final population (§5.3's classifier).
    let report = CoverageReport::analyze(model.relays());
    println!("\nhost-type coverage of the final population:");
    println!("  total relays          : {}", report.total_relays);
    println!(
        "  with rDNS name        : {} ({:.0}%)",
        report.named,
        report.named_fraction() * 100.0
    );
    println!(
        "  residential (of named): {} ({:.0}%; paper: ~61%)",
        report.residential,
        report.residential_fraction_of_named() * 100.0
    );
    println!("  named hosting company : {}", report.datacenter);
    println!("  other / unknown       : {}", report.unknown_named);
    println!("  unique /16 prefixes   : {}", report.unique_slash16);
    println!(
        "\nthe spread across {} /24s is what makes Tor usable as a King-style",
        report.unique_slash24
    );
    println!("latency-measurement platform now that open recursive DNS is gone (§5.3).");
}
