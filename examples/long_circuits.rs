//! TIV detours and longer low-latency circuits (§5.2).
//!
//! Two results from the paper's path-selection study, reproduced over a
//! Ting-measured matrix:
//!
//! * most relay pairs have a triangle-inequality violation — a relay
//!   whose detour beats the direct path (69% in the paper, Fig. 14);
//! * circuits longer than 3 hops can match 3-hop RTTs, with *many* more
//!   circuits to choose from at the same latency (Figs. 16–17).
//!
//! Run with: `cargo run --release --example long_circuits`

use analysis::{CircuitLengthAnalysis, TivReport};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stats::EmpiricalCdf;
use ting::{RttMatrix, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    let mut net = TorNetworkBuilder::live(31, 40).build();
    let subset: Vec<_> = net.relays.iter().copied().take(14).collect();
    println!(
        "measuring {}-relay all-pairs matrix with Ting...\n",
        subset.len()
    );
    let ting = Ting::new(TingConfig::fast());
    let matrix = RttMatrix::measure(&mut net, subset, &ting, |_, _| {}).expect("matrix");

    // ── TIVs (§5.2.1). ──
    let tiv = TivReport::analyze(&matrix);
    println!(
        "triangle-inequality violations: {:.0}% of pairs have one (paper: 69%)",
        tiv.violation_fraction() * 100.0
    );
    let savings = tiv.savings_distribution();
    if !savings.is_empty() {
        let cdf = EmpiricalCdf::new(&savings);
        println!(
            "  detour savings: median {:.1}%, p90 {:.1}% (paper: median 7.5%, p90 ≥ 28%)",
            cdf.median(),
            cdf.quantile(0.9)
        );
    }

    // ── Longer circuits (§5.2.2). ──
    let mut rng = SmallRng::seed_from_u64(5);
    let analysis = CircuitLengthAnalysis::run(&matrix, 3..=7, 10_000, 3.0, &mut rng);
    println!("\ncircuits by length (10,000 samples each, scaled to C(n, l)):");
    println!("{:>6} {:>14} {:>14}", "hops", "median RTT", "in 200-300ms");
    for s in &analysis.series {
        // Median binned RTT.
        let total: f64 = s.scaled_counts.iter().sum();
        let mut acc = 0.0;
        let mut median_s = 0.0;
        for (c, v) in s.bin_centers_s.iter().zip(&s.scaled_counts) {
            acc += v;
            if acc >= total / 2.0 {
                median_s = *c;
                break;
            }
        }
        let in_band = analysis.circuits_in_range(s.length, 0.2, 0.3);
        println!(
            "{:>6} {:>11.0} ms {:>14.3e}",
            s.length,
            median_s * 1000.0,
            in_band
        );
    }
    println!("\nlonger circuits offer orders of magnitude more options at the same RTT band,");
    println!("which is the paper's argument that circuit length need not cost latency.");
}
