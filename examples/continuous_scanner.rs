//! Continuous scanning: the §4.6 deployment workflow.
//!
//! Rather than measuring all pairs at once, a long-running deployment
//! keeps a cached matrix fresh under a per-round budget. This example
//! runs the scanner for three simulated days, then feeds the resulting
//! cache straight into the TIV analysis — the full Ting product loop.
//!
//! Run with: `cargo run --release --example continuous_scanner`

use netsim::{FaultPlan, SimDuration, SimTime};
use ting::{Scanner, ScannerConfig, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    // A little link loss makes the resilience layer visibly earn its
    // keep: some probes time out and some pairs are retried, yet the
    // cache still converges.
    let mut net = TorNetworkBuilder::live(808, 60)
        .fault_plan(FaultPlan::new(9).with_link_loss(0.002))
        .build();
    let nodes: Vec<_> = net.relays.iter().copied().take(16).collect();
    let pairs = nodes.len() * (nodes.len() - 1) / 2;

    let mut scanner = Scanner::new(
        nodes,
        ScannerConfig {
            staleness: SimDuration::from_hours(24),
            pairs_per_round: 20,
            ..ScannerConfig::default()
        },
    );
    let ting = Ting::new(TingConfig::fast());

    println!("scanning {pairs} pairs at ≤20 pairs per 4-hour round:\n");
    println!(
        "{:>6} {:>10} {:>9} {:>8}",
        "hour", "measured", "coverage", "pending"
    );
    for round in 0..18u64 {
        let hour = round * 4;
        net.sim
            .advance_to(SimTime::ZERO + SimDuration::from_hours(hour));
        let report = scanner.run_round(&mut net, &ting);
        println!(
            "{:>6} {:>10} {:>8.0}% {:>8}",
            hour,
            report.measured,
            scanner.coverage() * 100.0,
            report.still_pending
        );
    }

    // The cache is now a complete, reasonably fresh matrix: run §5.2.1.
    let matrix = scanner.matrix();
    assert!(matrix.is_complete());
    let tiv = analysis::TivReport::analyze(matrix);
    println!(
        "\ncache complete: mean RTT {:.1} ms; {:.0}% of pairs have a TIV detour",
        matrix.mean_rtt_ms().unwrap(),
        tiv.violation_fraction() * 100.0
    );
    println!("(the paper's §4.6 point: infrequent measurement + caching suffices,");
    println!(" because estimates are stable over at least a week)");

    let m = ting.metrics.snapshot();
    println!(
        "\nresilience counters: circuits_failed={} probes_timed_out={} retries={} pairs_requeued={}",
        m.circuits_failed, m.probes_timed_out, m.retries, m.pairs_requeued
    );
}
