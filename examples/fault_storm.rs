//! Fault storm: hammer the resilient pipeline at escalating fault rates.
//!
//! Builds a 24-relay live network and measures the same pair set at
//! several fault intensities — link loss, jitter spikes, stream stalls,
//! EXTEND refusals and overload cell-dropping all scale together. At
//! each rate the run reports the pair success ratio, the estimator's
//! error against the fault-free underlay ground truth, and the
//! resilience counters (failed circuits, timed-out probes, retries).
//!
//! The point: at rate 0 the pipeline is a strict no-op (success 1.00,
//! tiny error), and as faults ramp the per-phase timeouts + bounded
//! retry keep the run terminating — degraded, never wedged.
//!
//! Run with: `cargo run --release --example fault_storm`

use netsim::FaultPlan;
use ting::{Ting, TingConfig};
use tor_sim::{MeasurementSnapshot, RelayFaultProfile, TorNetworkBuilder};

struct StormReport {
    pairs: usize,
    succeeded: usize,
    median_rel_err: f64,
    counters: MeasurementSnapshot,
}

fn storm(rate: f64, seed: u64, pairs_limit: usize) -> StormReport {
    let mut net = TorNetworkBuilder::live(seed, 24)
        .fault_plan(
            FaultPlan::new(seed ^ 0xFA)
                .with_link_loss(rate)
                .with_jitter_spikes(rate, 40.0)
                .with_stalls(rate * 0.5, 400.0),
        )
        .relay_faults(RelayFaultProfile {
            extend_refuse_prob: rate * 0.5,
            overload_drop_prob: rate,
            overload_queue_depth: 32,
            seed: seed ^ 0x51,
        })
        .build();
    let nodes: Vec<_> = net.relays.iter().copied().take(20).collect();

    // One lost cell desyncs a circuit's onion crypto, so every probe
    // after it is dead weight: give up after a few lost probes and
    // spend the budget on fresh attempts instead.
    let ting = Ting::new(TingConfig {
        max_lost_probes: 4,
        max_attempts: 5,
        ..TingConfig::fast()
    });
    let mut succeeded = 0;
    let mut rel_errs = Vec::new();
    let mut pairs = 0;
    'outer: for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if pairs == pairs_limit {
                break 'outer;
            }
            pairs += 1;
            let (x, y) = (nodes[i], nodes[j]);
            let truth = net.true_rtt_ms(x, y);
            if let Ok(m) = ting.measure_pair(&mut net, x, y) {
                succeeded += 1;
                rel_errs.push((m.estimate_ms() - truth).abs() / truth);
            }
        }
    }
    rel_errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    StormReport {
        pairs,
        succeeded,
        median_rel_err: rel_errs
            .get(rel_errs.len() / 2)
            .copied()
            .unwrap_or(f64::NAN),
        counters: ting.metrics.snapshot(),
    }
}

fn main() {
    // A probe crosses each faulty link dozens of times per measurement,
    // so per-message rates in the per-mille range already translate to
    // double-digit per-attempt failure odds.
    let rates = [0.0, 0.002, 0.005, 0.01, 0.02];
    println!("fault storm: 20 of 24 relays, 40 pairs per rate\n");
    println!(
        "{:>6} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "rate", "success", "med_err%", "circ_fail", "probe_to", "retries", "ok/total"
    );
    for (i, &rate) in rates.iter().enumerate() {
        let r = storm(rate, 0x57F0 + i as u64, 40);
        let c = r.counters;
        println!(
            "{:>6.3} {:>8.2} {:>8.2}% {:>9} {:>8} {:>8} {:>5}/{}",
            rate,
            r.succeeded as f64 / r.pairs as f64,
            r.median_rel_err * 100.0,
            c.circuits_failed,
            c.probes_timed_out,
            c.retries,
            r.succeeded,
            r.pairs
        );
    }
    println!("\n(rate 0 is the control: the fault layer disabled is a strict no-op,");
    println!(" so success is 1.00 and the error matches a fault-free run exactly)");
}
