//! Build an all-pairs RTT matrix over live-like Tor relays.
//!
//! The §5 applications all consume a cached all-pairs dataset (§4.6
//! argues stability makes caching sound). This example measures a
//! small matrix with Ting, prints summary statistics, checks rank
//! agreement with ground truth, and emits the cacheable TSV form.
//!
//! Run with: `cargo run --release --example all_pairs`

use stats::EmpiricalCdf;
use ting::{RttMatrix, Ting, TingConfig};
use tor_sim::TorNetworkBuilder;

fn main() {
    // A live-like network; measure a subset, as the paper measured 50
    // random relays out of the full consensus.
    let mut net = TorNetworkBuilder::live(7, 60).build();
    let subset: Vec<_> = net.relays.iter().copied().take(12).collect();
    let pairs = subset.len() * (subset.len() - 1) / 2;
    println!(
        "measuring all {} pairs of {} relays (of {} total)...",
        pairs,
        subset.len(),
        net.relays.len()
    );

    let ting = Ting::new(TingConfig::with_samples(60));
    let matrix = RttMatrix::measure(&mut net, subset.clone(), &ting, |done, total| {
        if done % 10 == 0 || done == total {
            println!("  {done}/{total} pairs");
        }
    })
    .expect("matrix measured");

    // Summary (the Fig. 11 CDF's raw material).
    let values = matrix.values();
    let cdf = EmpiricalCdf::new(&values);
    println!();
    println!("all-pairs RTT summary:");
    println!("  pairs measured : {}", matrix.measured_pairs());
    println!(
        "  min / median / max : {:.1} / {:.1} / {:.1} ms",
        cdf.min(),
        cdf.median(),
        cdf.max()
    );
    println!(
        "  mean (Algorithm 1's µ) : {:.1} ms",
        matrix.mean_rtt_ms().unwrap()
    );

    // Rank agreement with ground truth (the Spearman-ρ headline).
    let mut est = Vec::with_capacity(pairs);
    let mut truth = Vec::with_capacity(pairs);
    for (a, b, v) in matrix.pairs() {
        est.push(v);
        truth.push(net.true_rtt_ms(a, b));
    }
    let rho = stats::spearman(&est, &truth).unwrap();
    println!("  Spearman rank correlation vs ground truth: {rho:.4}");

    // The cacheable dataset.
    let tsv = matrix.to_tsv();
    println!();
    println!("TSV dataset ({} bytes), first lines:", tsv.len());
    for line in tsv.lines().take(6) {
        println!("  {line}");
    }
    let reloaded = RttMatrix::from_tsv(&tsv).expect("roundtrip");
    assert_eq!(reloaded, matrix);
    println!("  (roundtrip through the TSV form verified)");
}
